"""The ``repro-ckpt/1`` byte format.

Mirrors the ``repro-trace/1`` encoding discipline::

    MAGIC (8) | sha256(header+payload) (32) | header length (4, BE)
             | canonical-JSON header | canonical-JSON state payload

The digest covers everything after itself, so a bit flip anywhere —
header or payload — is detected and the damaged checkpoint is refused.
The header carries the format version plus the caller's *bindings*
(trace key, machine-config hash, code version): a checkpoint decodes
only against the exact simulation it was taken from, so a stale file
left behind by an older code version or a different cell can never be
applied.  Any validation failure raises
:class:`~repro.errors.CheckpointError`; encode→decode→encode is
byte-identical.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import CheckpointError

#: Bump on any incompatible change to the header or state layout.
CKPT_FORMAT_VERSION = 1

#: File magic for the on-disk encoding.
MAGIC = b"RPROCKP\x01"


def _canonical(doc: dict) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_checkpoint(state: dict, bindings: dict) -> bytes:
    """Serialize a simulator ``state`` dict under ``bindings``.

    Deterministic byte-for-byte: both the header and the state payload
    are canonical JSON, so identical state encodes identically run
    after run (the chaos suite diffs encodings across processes).
    """
    payload = _canonical(state)
    header = _canonical(
        {
            "format": "repro-ckpt",
            "version": CKPT_FORMAT_VERSION,
            "bindings": bindings,
            "payload_bytes": len(payload),
        }
    )
    digest = hashlib.sha256(header + payload).digest()
    return b"".join(
        (MAGIC, digest, len(header).to_bytes(4, "big"), header, payload)
    )


def decode_checkpoint(data: bytes, bindings: dict | None = None) -> dict:
    """Decode and validate; raises :class:`CheckpointError` on damage.

    When ``bindings`` is given, the header's bindings must match it
    exactly — a mismatch (different trace, machine config or code
    version) is as fatal as a checksum failure.
    """
    prefix = len(MAGIC) + 32 + 4
    if len(data) < prefix:
        raise CheckpointError("truncated checkpoint (shorter than prefix)")
    if data[: len(MAGIC)] != MAGIC:
        raise CheckpointError("bad checkpoint magic")
    digest = data[len(MAGIC): len(MAGIC) + 32]
    header_len = int.from_bytes(data[len(MAGIC) + 32: prefix], "big")
    if len(data) < prefix + header_len:
        raise CheckpointError("truncated checkpoint (header cut short)")
    header = data[prefix: prefix + header_len]
    payload = data[prefix + header_len:]
    if hashlib.sha256(header + payload).digest() != digest:
        raise CheckpointError("checkpoint checksum mismatch")
    try:
        doc = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint header: {exc}")
    if not isinstance(doc, dict) or doc.get("format") != "repro-ckpt":
        raise CheckpointError("not a repro-ckpt header")
    if doc.get("version") != CKPT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {doc.get('version')!r} "
            f"(this build reads {CKPT_FORMAT_VERSION})"
        )
    if doc.get("payload_bytes") != len(payload):
        raise CheckpointError("checkpoint payload length disagrees with header")
    if bindings is not None and doc.get("bindings") != bindings:
        raise CheckpointError(
            "checkpoint bindings do not match this simulation "
            "(different trace, machine config or code version)"
        )
    try:
        state = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint state: {exc}")
    if not isinstance(state, dict):
        raise CheckpointError("checkpoint state must be a JSON object")
    return state
