"""Crash-survivable simulation: the ``repro-ckpt/1`` checkpoint layer.

A cycle-accurate simulation of a large trace is minutes of pure
deterministic replay; losing one to a late crash or timeout means
re-simulating from cycle 0.  This package lets the timing simulator
periodically snapshot its architectural bookkeeping — ROB, issue
windows, writer map, rename counters, cache/predictor state, stats —
into a small versioned, checksummed, atomically-published file, and
restore it on the next attempt so a retried or ``--resume``d cell
restarts mid-simulation.

Layers:

* :mod:`repro.checkpoint.codec` — byte-level encode/decode with the
  same discipline as ``repro-trace/1`` (magic, SHA-256 over header and
  payload, canonical-JSON header).  The header carries *bindings*
  (trace key, machine-config hash, code version) so a checkpoint can
  never be applied to a different simulation.
* :mod:`repro.checkpoint.store` — the on-disk slot directory
  (``REPRO_CKPT_DIR``, default ``.repro-ckpt``) and the
  :class:`~repro.checkpoint.store.CheckpointSlot` handle the simulator
  drives.  Reads are defensive: a missing, torn, corrupt or stale
  checkpoint is a *cold restart* (simulate from cycle 0), never a
  wrong result.

Checkpointing is off by default; ``REPRO_CKPT_CYCLES=<n>`` (or
``repro bench --checkpoint-cycles``) enables a snapshot every ``n``
simulated cycles.  The differential guarantee — resumed runs produce
``SimStats.to_counters()`` bit-identical to uninterrupted runs — is
pinned by ``tests/checkpoint/`` and the chaos suite.
"""

from __future__ import annotations

from repro.checkpoint.codec import (
    CKPT_FORMAT_VERSION,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.checkpoint.store import (
    CKPT_CYCLES_ENV,
    CKPT_DIR_ENV,
    CheckpointSlot,
    CheckpointStore,
    checkpoint_interval,
    config_sha256,
    slot_from_env,
)

__all__ = [
    "CKPT_CYCLES_ENV",
    "CKPT_DIR_ENV",
    "CKPT_FORMAT_VERSION",
    "CheckpointSlot",
    "CheckpointStore",
    "checkpoint_interval",
    "config_sha256",
    "decode_checkpoint",
    "encode_checkpoint",
    "slot_from_env",
]
