"""Greedy AST-level shrinker for failing fuzz programs.

Reduces a MiniC source while a caller-supplied *interestingness*
predicate keeps holding (for fuzz failures: "the differential oracle
still reports the same kind of violation").  The reduction loop mutates
the parsed AST in place, re-renders through the printer, and reverts any
edit that breaks the predicate — an edit that makes the program invalid
MiniC simply fails the predicate (the oracle can't reproduce a
violation on a program that doesn't parse), so type-correctness never
needs special-casing here.

Passes, iterated to a fixpoint (every accepted edit strictly shrinks
the AST, so termination is structural):

1. delete whole statements;
2. flatten control flow (``if``/loops/blocks -> their bodies);
3. drop entire helper functions and globals;
4. simplify expressions (binary -> one operand, unwrap unary/cast,
   calls/loads/names -> small literals).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.minic.astnodes import (
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    IntLit,
    Name,
    Return,
    Stmt,
    TranslationUnit,
    Unary,
    VarDecl,
    While,
)
from repro.minic.parser import parse
from repro.minic.printer import print_unit


@dataclass(eq=False, slots=True)
class ShrinkResult:
    """Outcome of one shrink campaign."""

    source: str
    tests: int = 0
    accepted: int = 0
    elapsed: float = 0.0
    budget_exhausted: bool = False

    @property
    def lines(self) -> int:
        return len([ln for ln in self.source.splitlines() if ln.strip()])


@dataclass(eq=False, slots=True)
class _Budget:
    max_tests: int
    deadline: float | None
    tests: int = 0
    exhausted: bool = False

    def spent(self) -> bool:
        if self.exhausted:
            return True
        if self.tests >= self.max_tests or (
            self.deadline is not None and time.monotonic() > self.deadline
        ):
            self.exhausted = True
        return self.exhausted


class _Slot:
    """One mutable expression position (object attribute or list item)."""

    __slots__ = ("obj", "key")

    def __init__(self, obj, key) -> None:
        self.obj = obj
        self.key = key

    def get(self) -> Expr:
        if isinstance(self.key, int):
            return self.obj[self.key]
        return getattr(self.obj, self.key)

    def set(self, value: Expr) -> None:
        if isinstance(self.key, int):
            self.obj[self.key] = value
        else:
            setattr(self.obj, self.key, value)


def _expr_slots_of_stmt(stmt: Stmt) -> list[_Slot]:
    if isinstance(stmt, VarDecl) and stmt.init is not None:
        return [_Slot(stmt, "init")]
    if isinstance(stmt, Assign):
        return [_Slot(stmt, "value")]
    if isinstance(stmt, ExprStmt):
        return [_Slot(stmt, "expr")]
    if isinstance(stmt, Return) and stmt.value is not None:
        return [_Slot(stmt, "value")]
    if isinstance(stmt, (If, While)):
        return [_Slot(stmt, "cond")]
    if isinstance(stmt, For) and stmt.cond is not None:
        return [_Slot(stmt, "cond")]
    return []


def _sub_slots(expr: Expr) -> list[_Slot]:
    if isinstance(expr, Binary):
        return [_Slot(expr, "left"), _Slot(expr, "right")]
    if isinstance(expr, (Unary, Cast)):
        return [_Slot(expr, "operand")]
    if isinstance(expr, Index):
        return [_Slot(expr, "index")]
    if isinstance(expr, Call):
        return [_Slot(expr.args, i) for i in range(len(expr.args))]
    return []


def _replacements(expr: Expr) -> list[Expr]:
    """Candidate strictly-smaller replacements for ``expr``."""
    if isinstance(expr, Binary):
        return [expr.left, expr.right, IntLit(value=1)]
    if isinstance(expr, (Unary, Cast)):
        return [expr.operand, IntLit(value=1)]
    if isinstance(expr, (Call, Index)):
        return [IntLit(value=1)]
    if isinstance(expr, Name):
        return [IntLit(value=1)]
    return []


def _inner_stmts(stmt: Stmt) -> list[Stmt] | None:
    """Statements a control-flow statement can be flattened into."""
    if isinstance(stmt, Block):
        return list(stmt.statements)
    if isinstance(stmt, If):
        inner = list(stmt.then_body.statements)
        if stmt.else_body is not None:
            inner += list(stmt.else_body.statements)
        return inner
    if isinstance(stmt, (While, For)):
        return list(stmt.body.statements)
    return None


def _blocks_of(unit: TranslationUnit) -> list[list[Stmt]]:
    """Every statement list in the unit, outermost first."""
    out: list[list[Stmt]] = []

    def walk(stmts: list[Stmt]) -> None:
        out.append(stmts)
        for stmt in stmts:
            if isinstance(stmt, Block):
                walk(stmt.statements)
            elif isinstance(stmt, If):
                walk(stmt.then_body.statements)
                if stmt.else_body is not None:
                    walk(stmt.else_body.statements)
            elif isinstance(stmt, (While, For)):
                walk(stmt.body.statements)

    for func in unit.functions:
        walk(func.body.statements)
    return out


class Shrinker:
    """Greedy reducer around an interestingness predicate.

    Args:
        interesting: ``source -> bool``; must hold for the input and is
            re-checked after every candidate edit.
        max_tests: Cap on predicate evaluations.
        budget: Optional wall-clock budget in seconds.
    """

    def __init__(
        self,
        interesting: Callable[[str], bool],
        max_tests: int = 2000,
        budget: float | None = None,
    ) -> None:
        self.interesting = interesting
        self.max_tests = max_tests
        self.budget = budget

    def shrink(self, source: str) -> ShrinkResult:
        t0 = time.monotonic()
        budget = _Budget(
            max_tests=self.max_tests,
            deadline=None if self.budget is None else t0 + self.budget,
        )
        if not self.interesting(source):
            raise ValueError("input program is not interesting to begin with")
        unit = parse(source)
        best = print_unit(unit)
        accepted = 0
        changed = True
        while changed and not budget.spent():
            changed = False
            for pass_fn in (
                self._pass_delete_stmts,
                self._pass_flatten,
                self._pass_drop_decls,
                self._pass_simplify_exprs,
            ):
                unit = parse(best)  # fresh AST per pass
                got, best = pass_fn(unit, best, budget)
                accepted += got
                if got:
                    changed = True
                if budget.spent():
                    break
        return ShrinkResult(
            source=best,
            tests=budget.tests,
            accepted=accepted,
            elapsed=time.monotonic() - t0,
            budget_exhausted=budget.exhausted,
        )

    # -- plumbing ---------------------------------------------------------
    def _try(self, unit: TranslationUnit, best: str, budget: _Budget) -> str | None:
        """Render ``unit``; return the new source if still interesting."""
        if budget.spent():
            return None
        try:
            candidate = print_unit(unit)
        except Exception:
            return None
        if candidate == best:
            return None
        budget.tests += 1
        try:
            if self.interesting(candidate):
                return candidate
        except Exception:
            return None
        return None

    # -- passes -----------------------------------------------------------
    def _pass_delete_stmts(
        self, unit: TranslationUnit, best: str, budget: _Budget
    ) -> tuple[int, str]:
        accepted = 0
        progress = True
        while progress and not budget.spent():
            progress = False
            for stmts in _blocks_of(unit):
                i = len(stmts) - 1
                while i >= 0 and not budget.spent():
                    removed = stmts.pop(i)
                    got = self._try(unit, best, budget)
                    if got is None:
                        stmts.insert(i, removed)
                    else:
                        best = got
                        accepted += 1
                        progress = True
                    i -= 1
        return accepted, best

    def _pass_flatten(
        self, unit: TranslationUnit, best: str, budget: _Budget
    ) -> tuple[int, str]:
        accepted = 0
        progress = True
        while progress and not budget.spent():
            progress = False
            for stmts in _blocks_of(unit):
                for i, stmt in enumerate(stmts):
                    inner = _inner_stmts(stmt)
                    if inner is None:
                        continue
                    stmts[i : i + 1] = inner
                    got = self._try(unit, best, budget)
                    if got is None:
                        stmts[i : i + len(inner)] = [stmt]
                    else:
                        best = got
                        accepted += 1
                        progress = True
                    break  # statement lists changed; re-walk
                if progress or budget.spent():
                    break
        return accepted, best

    def _pass_drop_decls(
        self, unit: TranslationUnit, best: str, budget: _Budget
    ) -> tuple[int, str]:
        accepted = 0
        for functions in (unit.functions,):
            i = len(functions) - 1
            while i >= 0 and not budget.spent():
                if functions[i].name == "main":
                    i -= 1
                    continue
                removed = functions.pop(i)
                got = self._try(unit, best, budget)
                if got is None:
                    functions.insert(i, removed)
                else:
                    best = got
                    accepted += 1
                i -= 1
        i = len(unit.globals) - 1
        while i >= 0 and not budget.spent():
            removed = unit.globals.pop(i)
            got = self._try(unit, best, budget)
            if got is None:
                unit.globals.insert(i, removed)
            else:
                best = got
                accepted += 1
            i -= 1
        return accepted, best

    def _pass_simplify_exprs(
        self, unit: TranslationUnit, best: str, budget: _Budget
    ) -> tuple[int, str]:
        accepted = 0
        progress = True
        while progress and not budget.spent():
            progress = False
            slots: list[_Slot] = []
            for stmts in _blocks_of(unit):
                for stmt in stmts:
                    work = _expr_slots_of_stmt(stmt)
                    while work:
                        slot = work.pop()
                        slots.append(slot)
                        work.extend(_sub_slots(slot.get()))
            for slot in slots:
                if budget.spent():
                    break
                original = slot.get()
                for candidate in _replacements(original):
                    slot.set(candidate)
                    got = self._try(unit, best, budget)
                    if got is None:
                        slot.set(original)
                    else:
                        best = got
                        accepted += 1
                        progress = True
                        break
        return accepted, best


def shrink_source(
    source: str,
    interesting: Callable[[str], bool],
    max_tests: int = 2000,
    budget: float | None = None,
) -> ShrinkResult:
    """Convenience wrapper: shrink ``source`` under ``interesting``."""
    return Shrinker(interesting, max_tests=max_tests, budget=budget).shrink(source)


__all__ = ["ShrinkResult", "Shrinker", "shrink_source"]
