"""Parameterized MiniC program generators.

Each generator maps a :class:`~repro.gen.spec.GeneratorSpec` plus a
workload ``scale`` to deterministic MiniC source.  Determinism is the
contract everything downstream leans on: the bench result cache and the
trace store key on the generated *source text*, so the same
``(spec, seed, scale)`` must be byte-identical across processes,
platforms and ``PYTHONHASHSEED`` values (guarded by
``tests/gen/test_determinism.py``).  All structural choices therefore
come from one ``random.Random(seed)`` stream and plain insertion-ordered
data structures — never from set/dict iteration of hashed objects.

Generators:

``mixer``
    The flagship: nested loops (``depth``) whose bodies mix four kernel
    families weighted by the axes — array traffic (``ldst``), branch
    slices over loaded flags (``branch``), pure integer compute chains
    (the offloadable remainder), and call-dense helper work (``calls``)
    — plus an optional genuine floating-point stencil (``fp``).

``chains``
    Long store-value dependence chains (ijpeg/m88ksim-style): each
    iteration loads a value, pushes it through ``depth`` chain segments
    of shifts/adds/xors, and stores it back; ``branch`` adds compare
    slices over the chain value, ``ldst`` widens the array traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # circular: spec validates against GENERATORS
    from repro.gen.spec import GeneratorSpec

#: Odd multipliers for address/index scrambling, drawn per site.
_SCRAMBLE = (3, 5, 7, 11, 13, 17, 19, 23)

#: Int constants for compute kernels.
_MASKS = (0x7FFFFFFF, 0xFFFFFF, 0x3FFFF, 0x1FFF)


@dataclass(frozen=True, slots=True)
class Generator:
    """One registered program generator."""

    name: str
    description: str
    axes: tuple[str, ...]
    emit: Callable[["GeneratorSpec", int], str]

    def example(self) -> str:
        return f"gen:{self.name}?seed=7"


def _header(spec: "GeneratorSpec", scale: int) -> str:
    return (
        f"// generated workload {spec.canonical()} (scale={scale})\n"
        "// deterministic: same spec + scale -> byte-identical source\n"
    )


def _rng_hex(rng: random.Random) -> str:
    return hex(rng.randrange(1, 1 << 20))


# ---------------------------------------------------------------------------
# mixer
# ---------------------------------------------------------------------------

_MIXER_ARRAY = 256  # power of two: indices are masked in-bounds
_MIXER_FARRAY = 64


def _mixer_helpers(rng: random.Random, count: int) -> tuple[list[str], list[str]]:
    """(function texts, callable names) for the call-density axis."""
    texts, names = [], []
    for k in range(count):
        name = f"mix_step{k}"
        shift_a = rng.randrange(1, 6)
        shift_b = rng.randrange(1, 6)
        add = rng.randrange(1, 1 << 16)
        # helpers are memory-less on purpose: the paper's §6.6 anecdote
        # (compress's RNG) — greedy schemes can move them to FPa wholesale
        texts.append(
            f"int {name}(int x, int k) {{\n"
            f"    int t = ((x << {shift_a}) ^ (x >> {shift_b})) + k;\n"
            f"    return (t + {add}) & 0x7fffffff;\n"
            f"}}\n"
        )
        names.append(name)
    return texts, names


def _mixer_kernel(
    kind: str,
    rng: random.Random,
    indices: list[str],
    helpers: list[str],
) -> list[str]:
    """One kernel statement group of the innermost loop body."""
    ix = rng.choice(indices)
    iy = rng.choice(indices)
    m1 = rng.choice(_SCRAMBLE)
    m2 = rng.choice(_SCRAMBLE)
    off = rng.randrange(0, _MIXER_ARRAY)
    mask = _MIXER_ARRAY - 1
    if kind == "ldst":
        # Figure 4 shape: load values feed a store value, the address
        # slice shares the induction variables
        return [
            f"out[({ix} * {m1} + {iy} + {off}) & {mask}] = "
            f"data[({ix} + {off}) & {mask}] + "
            f"(aux[({iy} * {m2}) & {mask}] ^ {_rng_hex(rng)});",
        ]
    if kind == "branch":
        # branch slice fed by loads: deep compare work over loaded flags
        thresh = rng.randrange(0, 256)
        return [
            f"if (data[({ix} * {m1}) & {mask}] > "
            f"(aux[({iy} + {off}) & {mask}] & {thresh})) {{",
            f"    s = s + {_rng_hex(rng)};",
            "} else {",
            f"    s = s ^ {_rng_hex(rng)};",
            "}",
        ]
    if kind == "call":
        helper = rng.choice(helpers)
        return [f"s = {helper}(s + {iy}, {ix} * {m2});"]
    if kind == "fp":
        fmask = _MIXER_FARRAY - 1
        coeff = round(rng.uniform(0.125, 0.875), 3)
        return [
            f"fbuf[({ix} + {off}) & {fmask}] = "
            f"fbuf[({iy} * {m1}) & {fmask}] * {coeff} + (float)(s & 255);",
        ]
    # pure integer compute chain: the offloadable remainder
    sh1 = rng.randrange(1, 8)
    sh2 = rng.randrange(1, 8)
    return [
        f"s = ((s << {sh1}) ^ (s >> {sh2})) + ({ix} * {m1});",
        f"s = (s + {_rng_hex(rng)}) & {hex(rng.choice(_MASKS))};",
    ]


def emit_mixer(spec: "GeneratorSpec", scale: int) -> str:
    rng = random.Random(spec.seed)
    n_helpers = max(1, round(spec.calls * 3)) if spec.calls > 0 else 0
    helper_texts, helper_names = _mixer_helpers(rng, n_helpers)

    # kernel schedule: a fixed draw of ~(4 + 2*depth) kernels weighted by
    # the axes; weights renormalize over the enabled families
    weights = [
        ("ldst", spec.ldst),
        ("branch", spec.branch),
        ("call", spec.calls if helper_names else 0.0),
        ("fp", spec.fp),
        ("compute", max(0.05, 1.0 - spec.ldst - spec.branch - spec.calls - spec.fp)),
    ]
    kinds = [k for k, w in weights if w > 0]
    kind_weights = [w for _, w in weights if w > 0]
    n_kernels = 4 + 2 * spec.depth
    schedule = rng.choices(kinds, weights=kind_weights, k=n_kernels)

    # loop nest: outermost trips = scale, inner levels small constants
    inner_trips = [rng.randrange(2, 5) for _ in range(spec.depth - 1)]
    indices = [f"i{level}" for level in range(spec.depth)]

    lines: list[str] = []
    lines.append(_header(spec, scale))
    lines.append(f"int data[{_MIXER_ARRAY}];")
    lines.append(f"int aux[{_MIXER_ARRAY}];")
    lines.append(f"int out[{_MIXER_ARRAY}];")
    if spec.fp > 0:
        lines.append(f"float fbuf[{_MIXER_FARRAY}];")
    lines.append("")
    lines.extend(helper_texts)

    lines.append("int main() {")
    for ix in indices:
        lines.append(f"    int {ix};")
    lines.append("    int s = 7;")
    lines.append("    int t = 99;")
    lines.append("    int checksum = 0;")
    # deterministic array init (LCG, no memory reads)
    lines.append(f"    for (i0 = 0; i0 < {_MIXER_ARRAY}; i0 = i0 + 1) {{")
    lines.append("        t = t * 1103515245 + 12345;")
    lines.append("        data[i0] = (t >> 8) & 255;")
    lines.append("        aux[i0] = (t >> 16) & 255;")
    lines.append("        out[i0] = 0;")
    lines.append("    }")
    if spec.fp > 0:
        lines.append(f"    for (i0 = 0; i0 < {_MIXER_FARRAY}; i0 = i0 + 1) {{")
        lines.append("        fbuf[i0] = (float)(i0 + 1) * 0.5;")
        lines.append("    }")

    # the loop nest
    pad = "    "
    lines.append(f"{pad}for (i0 = 0; i0 < {scale}; i0 = i0 + 1) {{")
    for level, trips in enumerate(inner_trips, start=1):
        pad += "    "
        lines.append(
            f"{pad}for (i{level} = 0; i{level} < {trips}; i{level} = i{level} + 1) {{"
        )
    body_pad = pad + "    "
    for kind in schedule:
        for text in _mixer_kernel(kind, rng, indices, helper_names):
            lines.append(body_pad + text)
    for _ in range(spec.depth):
        lines.append(pad + "}")
        pad = pad[:-4]

    # checksum fold: everything observable lands in the return value
    lines.append(f"    for (i0 = 0; i0 < {_MIXER_ARRAY}; i0 = i0 + 1) {{")
    lines.append(
        "        checksum = (checksum * 31 + out[i0] + (data[i0] ^ aux[i0])) & 0xffffff;"
    )
    lines.append("    }")
    if spec.fp > 0:
        lines.append(f"    for (i0 = 0; i0 < {_MIXER_FARRAY}; i0 = i0 + 1) {{")
        lines.append("        checksum = (checksum + ((int)fbuf[i0] & 255)) & 0xffffff;")
        lines.append("    }")
    lines.append("    checksum = (checksum ^ s) & 0xffffff;")
    lines.append("    return checksum;")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# chains
# ---------------------------------------------------------------------------

_CHAINS_ARRAY = 512


def emit_chains(spec: "GeneratorSpec", scale: int) -> str:
    rng = random.Random(spec.seed)
    mask = _CHAINS_ARRAY - 1
    segments = 2 + spec.depth  # chain length rides the depth axis
    n_stores = max(1, round(spec.ldst * 3))
    n_branches = max(0, round(spec.branch * 3))

    lines = [_header(spec, scale)]
    lines.append(f"int buf[{_CHAINS_ARRAY}];")
    lines.append(f"int tab[{_CHAINS_ARRAY}];")
    lines.append("")
    lines.append("int main() {")
    lines.append("    int i;")
    lines.append("    int x;")
    lines.append("    int s = 3;")
    lines.append("    int t = 41;")
    lines.append("    int checksum = 0;")
    lines.append(f"    for (i = 0; i < {_CHAINS_ARRAY}; i = i + 1) {{")
    lines.append("        t = t * 69069 + 1;")
    lines.append("        buf[i] = (t >> 7) & 1023;")
    lines.append("        tab[i] = (t >> 17) & 1023;")
    lines.append("    }")
    lines.append(f"    for (i = 0; i < {scale}; i = i + 1) {{")
    lines.append(f"        x = buf[(i * {rng.choice(_SCRAMBLE)}) & {mask}];")
    for _ in range(segments):
        sh1 = rng.randrange(1, 8)
        add = rng.randrange(1, 1 << 16)
        lines.append(f"        x = ((x << {sh1}) + {add}) ^ (x >> {rng.randrange(1, 6)});")
    for k in range(n_stores):
        m = rng.choice(_SCRAMBLE)
        off = rng.randrange(0, _CHAINS_ARRAY)
        lines.append(f"        buf[(i * {m} + {off}) & {mask}] = x + {k};")
    for _ in range(n_branches):
        lines.append(f"        if ((x & {rng.randrange(1, 64)}) != 0) {{")
        lines.append(f"            s = s + tab[(x + i) & {mask}];")
        lines.append("        } else {")
        lines.append(f"            s = s ^ {_rng_hex(rng)};")
        lines.append("        }")
    lines.append("        s = (s + x) & 0xffffff;")
    lines.append("    }")
    lines.append(f"    for (i = 0; i < {_CHAINS_ARRAY}; i = i + 1) {{")
    lines.append("        checksum = (checksum * 33 + buf[i]) & 0xffffff;")
    lines.append("    }")
    lines.append("    return (checksum ^ s) & 0xffffff;")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

GENERATORS: dict[str, Generator] = {
    gen.name: gen
    for gen in (
        Generator(
            name="mixer",
            description=(
                "nested-loop kernel mix: array traffic, branch slices, "
                "int compute chains, calls, optional FP stencil"
            ),
            axes=("seed", "calls", "branch", "ldst", "fp", "depth", "scale"),
            emit=emit_mixer,
        ),
        Generator(
            name="chains",
            description=(
                "long store-value dependence chains with tunable store "
                "and branch density (ijpeg/m88ksim shape)"
            ),
            axes=("seed", "branch", "ldst", "depth", "scale"),
            emit=emit_chains,
        ),
    )
}


def generate_source(spec: "GeneratorSpec", scale: int | None = None) -> str:
    """MiniC source for ``spec`` at ``scale`` (default: the spec's)."""
    from repro.errors import WorkloadError

    if scale is None:
        scale = spec.scale
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    return GENERATORS[spec.generator].emit(spec, scale)


__all__ = ["GENERATORS", "Generator", "emit_chains", "emit_mixer", "generate_source"]
