"""Workload generator framework + differential partition fuzzing.

Two layers:

* the **declarative generator layer** (:mod:`repro.gen.spec`,
  :mod:`repro.gen.emit`): ``gen:<generator>?axis=value&...`` spec
  strings that emit deterministic, seed-keyed MiniC programs and ride
  the existing workload machinery — bench cells, serve endpoints, trace
  and result cache keys — through :func:`generated_workload_spec`;

* the **random-program fuzzer** (:mod:`repro.gen.build`,
  :mod:`repro.gen.fuzz`, :mod:`repro.gen.shrink`,
  :mod:`repro.gen.corpus`): a grammar-directed builder producing
  well-typed MiniC, a differential oracle comparing basic vs advanced
  partitioning end to end, a greedy shrinker, and a replayable
  regression corpus under ``tests/corpus/regressions/``.

See ``docs/fuzzing.md`` for the spec grammar and the fuzzer invariants.
"""

from __future__ import annotations

from functools import lru_cache

from repro.gen.emit import GENERATORS, generate_source
from repro.gen.spec import GEN_PREFIX, GeneratorSpec, is_generator_spec


@lru_cache(maxsize=128)
def generated_workload_spec(name: str):
    """A :class:`~repro.workloads.WorkloadSpec` for a ``gen:`` spec string.

    The returned spec's ``name`` is the *canonical* spelling of the
    parsed spec, so e.g. ``gen:mixer?seed=7&calls=0.25`` and
    ``gen:mixer?seed=7`` resolve to the same workload (and the same
    cache keys, since keys hash the generated source text).
    """
    from repro.workloads import WorkloadSpec

    spec = GeneratorSpec.parse(name)
    generator = GENERATORS[spec.generator]
    return WorkloadSpec(
        name=spec.canonical(),
        category="fp" if spec.fp > 0 else "int",
        paper_input="(generated)",
        description=f"generated: {generator.description}",
        source_fn=lambda scale, _spec=spec: generate_source(_spec, scale),
        default_scale=spec.scale,
    )


__all__ = [
    "GEN_PREFIX",
    "GENERATORS",
    "GeneratorSpec",
    "generate_source",
    "generated_workload_spec",
    "is_generator_spec",
]
