"""Grammar-directed random MiniC program builder for the fuzzer.

Builds well-typed ASTs directly (rendered through
:mod:`repro.minic.printer`), so every emitted program passes semantic
analysis by construction.  The builder bakes in the guarantees the
differential oracle needs:

* **termination** — all loops are constant-bounded ``for`` loops whose
  induction variable is never reassigned in the body, and bounded
  ``while`` counters whose increment cannot be skipped (``break`` /
  ``continue`` are emitted only inside ``for`` bodies);
* **no traps** — ``/`` and ``%`` only ever see nonzero constant
  divisors; array indices are masked to the power-of-two array size;
* **MiniC typing** — int-only function params/args, explicit
  ``(int)`` casts on every float→int boundary, no local shadowing of
  globals (disjoint name prefixes), ``main()`` takes no params and
  returns an int checksum folding all mutated state;
* **determinism** — one ``random.Random(seed)`` stream drives every
  choice; equal seeds give byte-identical source on any platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.minic.astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IntLit,
    Name,
    ParamDecl,
    Return,
    Stmt,
    TranslationUnit,
    Unary,
    VarDecl,
    While,
)
from repro.minic.printer import print_unit

_INT_BINOPS = ("+", "-", "*", "&", "|", "^", "<<", ">>")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_FLOAT_BINOPS = ("+", "-", "*")
_ARRAY_SIZES = (16, 64, 256)


@dataclass(frozen=True, slots=True)
class BuildConfig:
    """Size/shape knobs for one generated program."""

    max_helpers: int = 3
    max_stmts: int = 7  # statements per block
    max_stmt_depth: int = 3  # control-flow nesting
    max_expr_depth: int = 3
    float_prob: float = 0.3  # probability the program uses floats at all
    max_locals: int = 4


@dataclass
class _Scope:
    """Names visible while building one function body."""

    int_vars: list[str] = field(default_factory=list)
    float_vars: list[str] = field(default_factory=list)
    loop_vars: list[str] = field(default_factory=list)  # readable, not writable
    int_arrays: list[tuple[str, int]] = field(default_factory=list)
    float_arrays: list[tuple[str, int]] = field(default_factory=list)
    callables: list[tuple[str, int]] = field(default_factory=list)  # (name, arity)

    def readable_ints(self) -> list[str]:
        return self.int_vars + self.loop_vars


class ProgramBuilder:
    """Builds one random, well-typed, terminating MiniC program."""

    def __init__(self, seed: int, config: BuildConfig | None = None) -> None:
        self.rng = random.Random(seed)
        self.config = config or BuildConfig()
        self.use_floats = self.rng.random() < self.config.float_prob
        self._loop_counter = 0
        # per-function shape limits (helpers are kept small so a chain of
        # calls nested under main's loops stays within any sane fuel)
        self._max_depth = self.config.max_stmt_depth
        self._helper_mode = False

    # -- entry point ------------------------------------------------------
    def build(self) -> TranslationUnit:
        globals_, base_scope = self._globals()
        functions: list[FuncDecl] = []
        n_helpers = self.rng.randrange(0, self.config.max_helpers + 1)
        for k in range(n_helpers):
            functions.append(self._helper(f"fn{k}", base_scope))
        functions.append(self._main(base_scope))
        return TranslationUnit(globals=globals_, functions=functions)

    def build_source(self) -> str:
        return print_unit(self.build())

    # -- globals ----------------------------------------------------------
    def _globals(self) -> tuple[list[GlobalDecl], _Scope]:
        rng = self.rng
        decls: list[GlobalDecl] = []
        scope = _Scope()
        for k in range(rng.randrange(1, 3)):
            size = rng.choice(_ARRAY_SIZES)
            decls.append(GlobalDecl(name=f"garr{k}", var_type="int", array_size=size))
            scope.int_arrays.append((f"garr{k}", size))
        for k in range(rng.randrange(1, 4)):
            decls.append(
                GlobalDecl(name=f"gs{k}", var_type="int", init=[rng.randrange(0, 100)])
            )
            scope.int_vars.append(f"gs{k}")
        if self.use_floats:
            size = rng.choice(_ARRAY_SIZES[:2])
            decls.append(GlobalDecl(name="gfarr", var_type="float", array_size=size))
            scope.float_arrays.append(("gfarr", size))
            decls.append(
                GlobalDecl(
                    name="gf0", var_type="float", init=[round(rng.uniform(0.5, 4.0), 3)]
                )
            )
            scope.float_vars.append("gf0")
        return decls, scope

    # -- functions --------------------------------------------------------
    def _helper(self, name: str, base: _Scope) -> FuncDecl:
        rng = self.rng
        arity = rng.randrange(1, 3)
        params = [ParamDecl(name=f"p{k}", var_type="int") for k in range(arity)]
        scope = _Scope(
            int_vars=base.int_vars + [p.name for p in params],
            float_vars=list(base.float_vars),
            int_arrays=list(base.int_arrays),
            float_arrays=list(base.float_arrays),
            callables=list(base.callables),  # earlier helpers only: acyclic
        )
        # helpers stay cheap: one loop level max, and calls to earlier
        # helpers only in straight-line code — the call-cost chain is then
        # additive per helper, so main's loop nest bounds total work
        self._helper_mode = True
        self._max_depth = 1
        try:
            body = self._body(scope, checksum=False)
            body.statements.append(Return(value=self._int_expr(scope, 0)))
        finally:
            self._helper_mode = False
            self._max_depth = self.config.max_stmt_depth
        base.callables.append((name, arity))
        return FuncDecl(name=name, ret_type="int", params=params, body=Block(statements=body.statements))

    def _main(self, base: _Scope) -> FuncDecl:
        scope = _Scope(
            int_vars=list(base.int_vars),
            float_vars=list(base.float_vars),
            int_arrays=list(base.int_arrays),
            float_arrays=list(base.float_arrays),
            callables=list(base.callables),
        )
        body = self._body(scope, checksum=True)
        return FuncDecl(name="main", ret_type="int", params=[], body=body)

    def _body(self, scope: _Scope, checksum: bool) -> Block:
        rng = self.rng
        stmts: list[Stmt] = []
        # locals first (unique names, no shadowing by prefix discipline)
        n_locals = rng.randrange(1, self.config.max_locals + 1)
        for k in range(n_locals):
            if self.use_floats and scope.float_vars and rng.random() < 0.25:
                stmts.append(
                    VarDecl(name=f"vf{k}", var_type="float", init=FloatLit(value=1.0))
                )
                scope.float_vars.append(f"vf{k}")
            else:
                stmts.append(
                    VarDecl(
                        name=f"v{k}",
                        var_type="int",
                        init=IntLit(value=rng.randrange(0, 64)),
                    )
                )
                scope.int_vars.append(f"v{k}")
        if checksum:
            # deterministic array seeding so loads are data-dependent
            stmts.extend(self._array_init(scope))
        for _ in range(rng.randrange(2, self.config.max_stmts + 1)):
            stmts.append(self._stmt(scope, depth=0, in_for=False))
        if checksum:
            stmts.extend(self._checksum_fold(scope))
        return Block(statements=stmts)

    def _array_init(self, scope: _Scope) -> list[Stmt]:
        rng = self.rng
        out: list[Stmt] = []
        for arr, size in scope.int_arrays:
            var = self._fresh_loop_var()
            out.append(VarDecl(name=var, var_type="int"))
            body = Block(
                statements=[
                    Assign(
                        target=Index(name=arr, index=Name(name=var)),
                        value=Binary(
                            op="&",
                            left=Binary(
                                op="*",
                                left=Binary(
                                    op="+",
                                    left=Name(name=var),
                                    right=IntLit(value=rng.randrange(1, 32)),
                                ),
                                right=IntLit(value=rng.choice((7, 13, 31, 61))),
                            ),
                            right=IntLit(value=1023),
                        ),
                    )
                ]
            )
            out.append(self._counted_for(var, size, body))
        for arr, size in scope.float_arrays:
            var = self._fresh_loop_var()
            out.append(VarDecl(name=var, var_type="int"))
            body = Block(
                statements=[
                    Assign(
                        target=Index(name=arr, index=Name(name=var)),
                        value=Binary(
                            op="*",
                            left=Cast(target="float", operand=Binary(
                                op="+", left=Name(name=var), right=IntLit(value=1)
                            )),
                            right=FloatLit(value=0.5),
                        ),
                    )
                ]
            )
            out.append(self._counted_for(var, size, body))
        return out

    def _checksum_fold(self, scope: _Scope) -> list[Stmt]:
        # fold every array and scalar into one int so all mutated state
        # is architecturally observable by the differential oracle
        out: list[Stmt] = [VarDecl(name="chk", var_type="int", init=IntLit(value=0))]
        for arr, size in scope.int_arrays:
            var = self._fresh_loop_var()
            out.append(VarDecl(name=var, var_type="int"))
            fold = Assign(
                target=Name(name="chk"),
                value=Binary(
                    op="&",
                    left=Binary(
                        op="+",
                        left=Binary(
                            op="*", left=Name(name="chk"), right=IntLit(value=31)
                        ),
                        right=Index(name=arr, index=Name(name=var)),
                    ),
                    right=IntLit(value=0xFFFFFF),
                ),
            )
            out.append(self._counted_for(var, size, Block(statements=[fold])))
        for arr, size in scope.float_arrays:
            var = self._fresh_loop_var()
            out.append(VarDecl(name=var, var_type="int"))
            fold = Assign(
                target=Name(name="chk"),
                value=Binary(
                    op="&",
                    left=Binary(
                        op="+",
                        left=Name(name="chk"),
                        right=Cast(
                            target="int",
                            operand=Index(name=arr, index=Name(name=var)),
                        ),
                    ),
                    right=IntLit(value=0xFFFFFF),
                ),
            )
            out.append(self._counted_for(var, size, Block(statements=[fold])))
        for name in scope.int_vars:
            out.append(
                Assign(
                    target=Name(name="chk"),
                    value=Binary(
                        op="&",
                        left=Binary(op="^", left=Name(name="chk"), right=Name(name=name)),
                        right=IntLit(value=0xFFFFFF),
                    ),
                )
            )
        for name in scope.float_vars:
            out.append(
                Assign(
                    target=Name(name="chk"),
                    value=Binary(
                        op="&",
                        left=Binary(
                            op="+",
                            left=Name(name="chk"),
                            right=Cast(target="int", operand=Name(name=name)),
                        ),
                        right=IntLit(value=0xFFFFFF),
                    ),
                )
            )
        out.append(Return(value=Name(name="chk")))
        return out

    # -- statements -------------------------------------------------------
    def _stmt(self, scope: _Scope, depth: int, in_for: bool) -> Stmt:
        rng = self.rng
        choices = ["assign", "assign", "assign"]
        if scope.int_arrays:
            choices += ["store", "store"]
        if self.use_floats and scope.float_vars:
            choices.append("fassign")
        if self.use_floats and scope.float_arrays:
            choices.append("fstore")
        if scope.callables:
            choices.append("call")
        if depth < self._max_depth:
            choices += ["if", "if", "for", "while"]
        if in_for and depth > 0 and rng.random() < 0.15:
            choices.append("breakish")
        kind = rng.choice(choices)
        if kind == "assign":
            target = rng.choice(scope.int_vars)
            return Assign(target=Name(name=target), value=self._int_expr(scope, 0))
        if kind == "store":
            arr, size = rng.choice(scope.int_arrays)
            return Assign(
                target=Index(name=arr, index=self._index_expr(scope, size)),
                value=self._int_expr(scope, 0),
            )
        if kind == "fassign":
            target = rng.choice(scope.float_vars)
            return Assign(target=Name(name=target), value=self._float_expr(scope, 0))
        if kind == "fstore":
            arr, size = rng.choice(scope.float_arrays)
            return Assign(
                target=Index(name=arr, index=self._index_expr(scope, size)),
                value=self._float_expr(scope, 0),
            )
        if kind == "call":
            name, arity = rng.choice(scope.callables)
            args = [self._int_expr(scope, 1) for _ in range(arity)]
            if scope.int_vars and rng.random() < 0.8:
                target = rng.choice(scope.int_vars)
                return Assign(target=Name(name=target), value=Call(name=name, args=args))
            return ExprStmt(expr=Call(name=name, args=args))
        if kind == "if":
            then_body = self._block(scope, depth + 1, in_for)
            else_body = self._block(scope, depth + 1, in_for) if rng.random() < 0.5 else None
            return If(cond=self._cond_expr(scope), then_body=then_body, else_body=else_body)
        if kind == "for":
            var = self._fresh_loop_var()
            scope.loop_vars.append(var)
            body = self._block(scope, depth + 1, in_for=True)
            scope.loop_vars.remove(var)
            trips = rng.randrange(2, 9)
            loop = self._counted_for(var, trips, body)
            decl = VarDecl(name=var, var_type="int")
            return Block(statements=[decl, loop])
        if kind == "while":
            # bounded while: counter increments first so `continue` (never
            # emitted here anyway) could not skip it
            var = self._fresh_loop_var()
            trips = rng.randrange(2, 7)
            inner = self._block(scope, depth + 1, in_for=False)
            body = Block(
                statements=[
                    Assign(
                        target=Name(name=var),
                        value=Binary(op="+", left=Name(name=var), right=IntLit(value=1)),
                    )
                ]
                + inner.statements
            )
            return Block(
                statements=[
                    VarDecl(name=var, var_type="int", init=IntLit(value=0)),
                    While(
                        cond=Binary(op="<", left=Name(name=var), right=IntLit(value=trips)),
                        body=body,
                    ),
                ]
            )
        if kind == "breakish":
            guard = self._cond_expr(scope)
            exit_stmt: Stmt = Break() if rng.random() < 0.5 else Continue()
            return If(cond=guard, then_body=Block(statements=[exit_stmt]))
        raise AssertionError(kind)

    def _block(self, scope: _Scope, depth: int, in_for: bool) -> Block:
        n = self.rng.randrange(1, max(2, self.config.max_stmts - depth))
        saved = scope.callables
        if self._helper_mode and depth >= 1:
            scope.callables = []  # no helper->helper calls under loops
        try:
            return Block(
                statements=[self._stmt(scope, depth, in_for) for _ in range(n)]
            )
        finally:
            scope.callables = saved

    def _counted_for(self, var: str, trips: int, body: Block) -> For:
        return For(
            init=Assign(target=Name(name=var), value=IntLit(value=0)),
            cond=Binary(op="<", left=Name(name=var), right=IntLit(value=trips)),
            step=Assign(
                target=Name(name=var),
                value=Binary(op="+", left=Name(name=var), right=IntLit(value=1)),
            ),
            body=body,
        )

    def _fresh_loop_var(self) -> str:
        self._loop_counter += 1
        return f"it{self._loop_counter}"

    # -- expressions ------------------------------------------------------
    def _int_expr(self, scope: _Scope, depth: int) -> Expr:
        rng = self.rng
        if depth >= self.config.max_expr_depth or rng.random() < 0.3:
            return self._int_leaf(scope)
        roll = rng.random()
        if roll < 0.62:
            op = rng.choice(_INT_BINOPS)
            left = self._int_expr(scope, depth + 1)
            if op in ("<<", ">>"):
                right: Expr = IntLit(value=rng.randrange(0, 9))
            else:
                right = self._int_expr(scope, depth + 1)
            return Binary(op=op, left=left, right=right)
        if roll < 0.72:
            # trap-free division: nonzero constant divisor
            op = rng.choice(("/", "%"))
            return Binary(
                op=op,
                left=self._int_expr(scope, depth + 1),
                right=IntLit(value=rng.randrange(1, 17)),
            )
        if roll < 0.80:
            op = rng.choice(("-", "~", "!"))
            return Unary(op=op, operand=self._int_expr(scope, depth + 1))
        if roll < 0.88:
            return Binary(
                op=rng.choice(_CMP_OPS),
                left=self._int_expr(scope, depth + 1),
                right=self._int_expr(scope, depth + 1),
            )
        if roll < 0.94 and scope.callables:
            name, arity = rng.choice(scope.callables)
            return Call(
                name=name, args=[self._int_expr(scope, depth + 1) for _ in range(arity)]
            )
        if self.use_floats and (scope.float_vars or scope.float_arrays):
            return Cast(target="int", operand=self._float_expr(scope, depth + 1))
        return self._int_leaf(scope)

    def _int_leaf(self, scope: _Scope) -> Expr:
        rng = self.rng
        readable = scope.readable_ints()
        roll = rng.random()
        if roll < 0.45 and readable:
            return Name(name=rng.choice(readable))
        if roll < 0.7 and scope.int_arrays:
            arr, size = rng.choice(scope.int_arrays)
            return Index(name=arr, index=self._index_expr(scope, size))
        return IntLit(value=rng.randrange(0, 256))

    def _index_expr(self, scope: _Scope, size: int) -> Expr:
        """An in-bounds index: arbitrary int expr masked to ``size - 1``."""
        return Binary(
            op="&",
            left=self._int_expr(scope, self.config.max_expr_depth - 1),
            right=IntLit(value=size - 1),
        )

    def _cond_expr(self, scope: _Scope) -> Expr:
        return Binary(
            op=self.rng.choice(_CMP_OPS),
            left=self._int_expr(scope, 1),
            right=self._int_expr(scope, 1),
        )

    def _float_expr(self, scope: _Scope, depth: int) -> Expr:
        rng = self.rng
        if depth >= self.config.max_expr_depth or rng.random() < 0.35:
            return self._float_leaf(scope)
        roll = rng.random()
        if roll < 0.7:
            return Binary(
                op=rng.choice(_FLOAT_BINOPS),
                left=self._float_expr(scope, depth + 1),
                right=self._float_expr(scope, depth + 1),
            )
        if roll < 0.85:
            return Cast(target="float", operand=self._int_expr(scope, depth + 1))
        return Unary(op="-", operand=self._float_expr(scope, depth + 1))

    def _float_leaf(self, scope: _Scope) -> Expr:
        rng = self.rng
        roll = rng.random()
        if roll < 0.4 and scope.float_vars:
            return Name(name=rng.choice(scope.float_vars))
        if roll < 0.7 and scope.float_arrays:
            arr, size = rng.choice(scope.float_arrays)
            return Index(name=arr, index=self._index_expr(scope, size))
        return FloatLit(value=round(rng.uniform(0.0, 8.0), 3))


def build_program(seed: int, config: BuildConfig | None = None) -> str:
    """Deterministic random MiniC source for ``seed``."""
    return ProgramBuilder(seed, config).build_source()


__all__ = ["BuildConfig", "ProgramBuilder", "build_program"]
