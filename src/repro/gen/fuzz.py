"""Differential partition fuzzing: random MiniC vs the §6.1 contract.

Every generated program is pushed through the full pipeline under all
three schemes and checked against the invariants the paper's machinery
promises (the *oracle*).  A program that breaks any of them is a
**violation** — the fuzz loop records it, writes a crash bundle, and
(optionally) shrinks it into a replayable regression.

Oracle invariants, per program:

``compile``      both schemes compile, partition, rewrite, register-
                 allocate and pass the IR verifier
``lint``         lint-clean under all 8 rules: the partition-level rules
                 pre-rewrite, the full dataflow rules post-rewrite
``certify``      every advanced partition passes the independent §6.1
                 re-pricing (Profit >= -eps), priced with the *audit*
                 cost params — normally the partitioner's own, but a
                 deliberately skewed set in ``--inject-cost-bug`` mode,
                 which must make the fuzzer report violations (the
                 fuzzer-catches-bugs acceptance check)
``checksum``     bit-exact architectural results across conventional /
                 basic / advanced
``retire``       the timing simulation retires exactly the traced
                 instruction count under both partitioned schemes
``basic-pure``   the basic scheme never *adds* instructions (§5: it may
                 not insert copies; eliminating pre-existing conversion
                 copies is allowed, so dyn_basic <= dyn_conventional)
``profit-bound`` advanced never loses to basic by more than the copy
                 overhead it added plus a small modelling slack:
                 ``cycles_adv <= cycles_basic + o_copy * added + slack``
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import FuzzViolationError, ReproError
from repro.gen.build import BuildConfig, build_program
from repro.ir.program import Program
from repro.ir.verify import verify_program
from repro.lint.registry import Severity, partition_rule_ids
from repro.lint.runner import lint_program
from repro.minic.compile import compile_source
from repro.partition.cost import CostParams, ExecutionProfile
from repro.partition.program import (
    advanced_partition,
    apply_partition,
    basic_partition,
)
from repro.regalloc.linear_scan import allocate_program
from repro.runtime.interp import run_program
from repro.sim.config import MachineConfig, four_way
from repro.sim.pipeline import TimingSimulator
from repro.trace.pack import pack_entries

#: Profit certification tolerance mirrored from the certifier.
PROFIT_EPS = 1e-6

#: Interpreter fuel per scheme run; generated programs are bounded well
#: below this by construction (see :mod:`repro.gen.build`).
FUZZ_FUEL = 20_000_000

#: Slack for the profit bound: local §6.1 pricing vs the global timing
#: simulation (fetch grouping, cache and branch effects the cost model
#: does not see).  Fractional of the basic cycles plus a constant floor
#: for tiny programs.
PROFIT_SLACK_FRACTION = 0.08
PROFIT_SLACK_FLOOR = 400.0


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken oracle invariant for one program."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display only
        return f"[{self.kind}] {self.detail}"


@dataclass(eq=False, slots=True)
class _SchemeRun:
    program: Program
    checksum: int | None = None
    dynamic: int = 0
    cycles: int = 0
    retired: int = 0
    copies_added: int = 0


@dataclass(eq=False, slots=True)
class FuzzCase:
    """Outcome of checking one generated program."""

    seed: int
    source: str
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(eq=False, slots=True)
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    seeds_run: int = 0
    elapsed: float = 0.0
    failures: list[FuzzCase] = field(default_factory=list)
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures


class DifferentialOracle:
    """Checks one MiniC source against the differential invariants.

    Args:
        params: Cost parameters handed to the *partitioner*.
        audit_params: Cost parameters used to *audit* (lint + certify).
            Defaults to ``params``; passing a different set models a
            profit-accounting bug and must produce ``certify``
            violations (this is how ``repro fuzz --inject-cost-bug``
            demonstrates the oracle has teeth).
        config: Machine config for the timing simulation.
        schemes: Subset of schemes to run — the shrinker uses e.g.
            ``("advanced",)`` to make its interestingness predicate
            cheap; cross-scheme invariants only fire when every scheme
            they mention actually ran.
        simulate: Run the timing simulation (the ``retire`` and
            ``profit-bound`` invariants need it; lint/certify/checksum
            do not).
    """

    def __init__(
        self,
        params: CostParams | None = None,
        audit_params: CostParams | None = None,
        config: MachineConfig | None = None,
        fuel: int = FUZZ_FUEL,
        schemes: tuple[str, ...] = ("conventional", "basic", "advanced"),
        simulate: bool = True,
    ) -> None:
        self.params = params or CostParams()
        self.audit_params = audit_params or self.params
        self.config = config or four_way()
        self.fuel = fuel
        self.schemes = schemes
        self.simulate = simulate

    # -- pipeline legs ----------------------------------------------------
    def _run_scheme(
        self, source: str, scheme: str, violations: list[Violation]
    ) -> _SchemeRun | None:
        try:
            program = compile_source(source, optimize=True)
        except ReproError as exc:
            violations.append(Violation("compile", f"{scheme}: {exc}"))
            return None
        run = _SchemeRun(program=program)
        try:
            if scheme != "conventional":
                profile = run_program(program, fuel=self.fuel).profile
                self._partition_and_audit(program, scheme, profile, run, violations)
            allocate_program(program)
            verify_program(program)
        except ReproError as exc:
            violations.append(Violation("compile", f"{scheme}: {exc}"))
            return None
        try:
            result = run_program(program, fuel=self.fuel, collect_trace=True)
        except ReproError as exc:
            violations.append(Violation("compile", f"{scheme}: execution: {exc}"))
            return None
        run.checksum = result.value
        run.dynamic = result.instructions
        if self.simulate:
            packed = pack_entries(result.trace, value=result.value)
            stats = TimingSimulator(self.config).run(packed)
            run.cycles = stats.cycles
            run.retired = stats.retired
            if stats.retired != packed.n:
                violations.append(
                    Violation(
                        "retire",
                        f"{scheme}: simulator retired {stats.retired} of "
                        f"{packed.n} traced instructions",
                    )
                )
        return run

    def _partition_and_audit(
        self,
        program: Program,
        scheme: str,
        profile: ExecutionProfile,
        run: _SchemeRun,
        violations: list[Violation],
    ) -> None:
        """Partition + certify + lint + rewrite, auditing with
        ``audit_params`` (the partitioner itself uses ``params``)."""
        from repro.analysis.certify import certify_partition

        partitions = {}
        for name, func in program.functions.items():
            if scheme == "basic":
                partitions[name] = basic_partition(func)
            else:
                partitions[name] = advanced_partition(
                    func, profile=profile, params=self.params
                )
        # pre-rewrite: partition-level rules, priced with the audit params
        pre = lint_program(
            program,
            partitions=partitions,
            profile=profile,
            params=self.audit_params,
            scheme=scheme,
            rules=partition_rule_ids(),
        )
        self._collect_lint(pre, f"{scheme}/pre-rewrite", violations)
        if scheme == "advanced":
            for name in program.functions:
                certificate = certify_partition(
                    partitions[name], profile=profile, params=self.audit_params
                )
                if not certificate.ok:
                    for message, _ in certificate.violations:
                        violations.append(
                            Violation("certify", f"{name}: {message}")
                        )
        for name, func in program.functions.items():
            stats = apply_partition(func, partitions[name])
            run.copies_added += (
                stats.copies_inserted + stats.dups_inserted + stats.back_copies_inserted
            )
        verify_program(program)
        post = lint_program(program, scheme=scheme)
        self._collect_lint(post, f"{scheme}/post-rewrite", violations)

    @staticmethod
    def _collect_lint(result, where: str, violations: list[Violation]) -> None:
        for diag in result.diagnostics:
            if diag.severity >= Severity.ERROR:
                violations.append(
                    Violation("lint", f"{where}: {diag.rule}: {diag.message}")
                )

    # -- the oracle -------------------------------------------------------
    def check_source(self, source: str, seed: int = -1) -> FuzzCase:
        """All differential invariants for one program."""
        case = FuzzCase(seed=seed, source=source)
        violations = case.violations
        runs: dict[str, _SchemeRun | None] = {
            scheme: self._run_scheme(source, scheme, violations)
            for scheme in self.schemes
        }
        conventional = runs.get("conventional")
        basic = runs.get("basic")
        advanced = runs.get("advanced")
        live = {k: r for k, r in runs.items() if r is not None}
        checksums = {k: r.checksum for k, r in live.items()}
        if len(set(checksums.values())) > 1:
            violations.append(
                Violation("checksum", f"architectural results diverge: {checksums}")
            )
        if conventional is not None and basic is not None:
            if basic.dynamic > conventional.dynamic:
                violations.append(
                    Violation(
                        "basic-pure",
                        "basic scheme increased the dynamic instruction "
                        f"count: {conventional.dynamic} -> {basic.dynamic} "
                        "(it may not insert copies; it may only eliminate "
                        "pre-existing conversion copies)",
                    )
                )
        if basic is not None and advanced is not None and self.simulate:
            added = max(0, advanced.dynamic - basic.dynamic)
            slack = max(
                PROFIT_SLACK_FLOOR, PROFIT_SLACK_FRACTION * basic.cycles
            )
            bound = basic.cycles + self.params.o_copy * added + slack
            if advanced.cycles > bound:
                violations.append(
                    Violation(
                        "profit-bound",
                        f"advanced lost to basic beyond the copy-overhead "
                        f"bound: {advanced.cycles} cycles vs "
                        f"{basic.cycles} + {self.params.o_copy} * {added} "
                        f"+ slack {slack:.0f} = {bound:.0f}",
                    )
                )
        return case


def fuzz_run(
    seeds: int,
    start: int = 0,
    budget: float | None = None,
    oracle: DifferentialOracle | None = None,
    config: BuildConfig | None = None,
    on_case=None,
) -> FuzzReport:
    """Fuzz ``seeds`` programs (seeds ``start .. start+seeds-1``).

    Args:
        budget: Wall-clock budget in seconds; the campaign stops early
            (``report.budget_exhausted``) when exceeded.
        on_case: Optional callback ``(case) -> None`` invoked after each
            checked program (progress reporting, bundle writing).
    """
    oracle = oracle or DifferentialOracle()
    report = FuzzReport()
    t0 = time.monotonic()
    for seed in range(start, start + seeds):
        if budget is not None and time.monotonic() - t0 > budget:
            report.budget_exhausted = True
            break
        source = build_program(seed, config)
        case = oracle.check_source(source, seed=seed)
        report.seeds_run += 1
        if not case.ok:
            report.failures.append(case)
        if on_case is not None:
            on_case(case)
    report.elapsed = time.monotonic() - t0
    return report


def make_interesting(oracle: DifferentialOracle, kinds: set[str]):
    """An interestingness predicate for the shrinker: the oracle still
    reports at least one violation of one of ``kinds``."""

    def interesting(source: str) -> bool:
        case = oracle.check_source(source)
        return bool(kinds & {v.kind for v in case.violations})

    return interesting


def raise_on_failures(report: FuzzReport) -> None:
    """Raise :class:`FuzzViolationError` when a campaign found failures."""
    if report.ok:
        return
    lines = []
    for case in report.failures:
        for violation in case.violations:
            lines.append(f"  seed {case.seed}: {violation}")
    raise FuzzViolationError(
        f"{len(report.failures)} of {report.seeds_run} fuzzed programs "
        "violated the differential oracle:\n" + "\n".join(lines)
    )


__all__ = [
    "DifferentialOracle",
    "FuzzCase",
    "FuzzReport",
    "FUZZ_FUEL",
    "PROFIT_EPS",
    "Violation",
    "fuzz_run",
    "make_interesting",
    "raise_on_failures",
]
