"""``repro fuzz`` — differential partition fuzzing campaigns.

Modes (mutually exclusive):

* campaign (default): generate ``--seeds`` programs, check each against
  the differential oracle, write a crash bundle per failure (optionally
  shrunk first with ``--shrink``), and exit 25 when anything failed.
* ``--replay``: re-run the oracle on crash bundles / ``.mc`` files /
  the committed regression corpus.
* ``--promote``: shrink-and-commit a failing program into the
  regression corpus once the underlying bug is fixed (the promoted file
  must replay green through the *honest* oracle).

``--inject-cost-bug`` audits with deliberately skewed cost parameters —
the partitioner still optimizes with the paper's numbers, but the §6.1
re-pricing disagrees, so the campaign MUST report certify violations.
This is the self-test that proves the oracle has teeth.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.gen.corpus import (
    DEFAULT_CRASH_DIR,
    REGRESSION_DIR,
    iter_regressions,
    load_crash_source,
    write_crash_bundle,
    write_regression,
)
from repro.gen.fuzz import (
    DifferentialOracle,
    fuzz_run,
    make_interesting,
    raise_on_failures,
)
from repro.partition.cost import CostParams

#: Audit params for ``--inject-cost-bug``: the auditor prices copies at
#: 4x the partitioner's o_copy, so partitions the paper's numbers call
#: profitable fail the independent re-pricing.
BUGGY_AUDIT_PARAMS = CostParams(o_copy=12.0, o_dupl=6.0)

#: Shrink limits for ``--shrink``: a few hundred predicate tests within
#: a wall-clock budget.  The predicate oracle also runs with a much
#: smaller interpreter fuel than a campaign — shrink mutations can turn
#: bounded loops into fuel-burners, and one 20M-instruction candidate
#: would eat the whole budget (such candidates are uninteresting by
#: definition: the original failure reproduces in far fewer).
SHRINK_MAX_TESTS = 400
SHRINK_BUDGET = 240.0
SHRINK_FUEL = 2_000_000


def configure_parser(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seeds", type=int, default=50, metavar="N",
                   help="number of generated programs to check (default: 50)")
    p.add_argument("--start", type=int, default=0, metavar="K",
                   help="first builder seed (campaigns are resumable by "
                        "seed range; default: 0)")
    p.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget; the campaign stops early once "
                        "exceeded (reported as budget-exhausted)")
    p.add_argument("--crash-dir", default=DEFAULT_CRASH_DIR, metavar="DIR",
                   help="where failing programs are bundled "
                        f"(default: {DEFAULT_CRASH_DIR})")
    p.add_argument("--shrink", action="store_true",
                   help="shrink each failing program before bundling it")
    p.add_argument("--inject-cost-bug", action="store_true",
                   help="audit with skewed cost params to demonstrate the "
                        "oracle catches profit-accounting bugs (the campaign "
                        "is EXPECTED to fail with certify violations)")
    p.add_argument("--no-simulate", action="store_true",
                   help="skip the timing simulation (drops the retire and "
                        "profit-bound invariants; roughly halves the cost "
                        "per seed)")
    p.add_argument("--replay", nargs="*", default=None, metavar="PATH",
                   help="replay crash bundles or .mc files through the "
                        "oracle instead of fuzzing; with no PATH, replays "
                        f"the committed corpus under {REGRESSION_DIR}")
    p.add_argument("--promote", default=None, metavar="PATH",
                   help="shrink PATH (bundle or .mc) under the honest "
                        "oracle's failure kinds recorded in its bundle, "
                        "then commit it into the regression corpus; the "
                        "file must replay green (use after fixing the bug)")
    p.add_argument("--name", default=None, metavar="SLUG",
                   help="corpus file name for --promote (default: derived "
                        "from the bundle seed)")
    p.add_argument("--note", default="", metavar="TEXT",
                   help="one-line provenance note recorded in the promoted "
                        "corpus header")
    p.add_argument("--corpus-dir", default=str(REGRESSION_DIR), metavar="DIR",
                   help="regression corpus directory (default: "
                        f"{REGRESSION_DIR})")


def _make_oracle(args: argparse.Namespace) -> DifferentialOracle:
    audit = BUGGY_AUDIT_PARAMS if args.inject_cost_bug else None
    return DifferentialOracle(
        audit_params=audit, simulate=not args.no_simulate
    )


def _shrink_failure(case, oracle: DifferentialOracle) -> None:
    """Shrink ``case.source`` in place, preserving its violation kinds."""
    from repro.gen.shrink import shrink_source

    kinds = {v.kind for v in case.violations}
    # retire/profit-bound need the timing sim; everything else shrinks
    # faster without it
    need_sim = bool(kinds & {"retire", "profit-bound"})
    predicate_oracle = DifferentialOracle(
        params=oracle.params,
        audit_params=oracle.audit_params,
        config=oracle.config,
        fuel=SHRINK_FUEL,
        simulate=need_sim,
    )
    interesting = make_interesting(predicate_oracle, kinds)
    try:
        result = shrink_source(
            case.source, interesting,
            max_tests=SHRINK_MAX_TESTS, budget=SHRINK_BUDGET,
        )
    except ValueError:
        return  # kind did not reproduce under the cheap oracle; keep as-is
    case.source = result.source
    print(
        f"  shrunk seed {case.seed}: {result.lines} lines "
        f"({result.tests} tests, {result.accepted} accepted)"
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    oracle = _make_oracle(args)
    if args.inject_cost_bug:
        print(
            "fuzz: auditing with skewed cost params "
            f"(o_copy={BUGGY_AUDIT_PARAMS.o_copy}, "
            f"o_dupl={BUGGY_AUDIT_PARAMS.o_dupl}) — violations expected"
        )

    def on_case(case) -> None:
        status = "ok" if case.ok else "FAIL " + ",".join(
            sorted({v.kind for v in case.violations})
        )
        print(f"  seed {case.seed}: {status}", flush=True)

    report = fuzz_run(
        args.seeds, start=args.start, budget=args.budget,
        oracle=oracle, on_case=on_case,
    )
    for case in report.failures:
        if args.shrink:
            _shrink_failure(case, oracle)
        bundle = write_crash_bundle(
            args.crash_dir, case,
            extra_meta={"inject_cost_bug": args.inject_cost_bug},
        )
        print(f"  crash bundle: {bundle}")
    tail = " (budget exhausted)" if report.budget_exhausted else ""
    print(
        f"fuzz: {report.seeds_run} seeds in {report.elapsed:.1f}s, "
        f"{len(report.failures)} failing{tail}"
    )
    raise_on_failures(report)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    oracle = _make_oracle(args)
    paths = [Path(p) for p in args.replay]
    if not paths:
        paths = iter_regressions(args.corpus_dir)
        if not paths:
            raise ReproError(f"no corpus files under {args.corpus_dir}")
    failures = 0
    for path in paths:
        case = oracle.check_source(load_crash_source(path))
        if case.ok:
            print(f"  {path}: ok")
        else:
            failures += 1
            print(f"  {path}: FAIL")
            for violation in case.violations:
                print(f"    {violation}")
    print(f"replay: {len(paths)} programs, {failures} failing")
    return 1 if failures else 0


def _cmd_promote(args: argparse.Namespace) -> int:
    import json

    source = load_crash_source(args.promote)
    bundle = Path(args.promote)
    seed, kinds = None, []
    meta_path = (bundle if bundle.is_dir() else bundle.parent) / "meta.json"
    if meta_path.is_file():
        meta = json.loads(meta_path.read_text())
        seed = meta.get("seed")
        kinds = meta.get("kinds", [])
    oracle = _make_oracle(args)  # honest params: promoted files replay green
    case = oracle.check_source(source)
    if not case.ok:
        raise ReproError(
            "cannot promote: program still fails the honest oracle "
            f"({', '.join(sorted({v.kind for v in case.violations}))}); "
            "fix the bug first, then promote"
        )
    name = args.name or (f"seed-{seed}" if seed is not None else bundle.stem)
    path = write_regression(
        args.corpus_dir, name, source,
        seed=seed, kinds=kinds, note=args.note,
    )
    print(f"promoted: {path} ({len(source.splitlines())} lines)")
    return 0


def run(args: argparse.Namespace) -> int:
    if args.promote is not None:
        return _cmd_promote(args)
    if args.replay is not None:
        return _cmd_replay(args)
    return _cmd_campaign(args)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    parser = argparse.ArgumentParser(prog="repro fuzz", description=__doc__)
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
