"""Declarative generator specs: ``gen:<generator>?axis=value&...``.

A :class:`GeneratorSpec` names a registered MiniC program generator plus
a point in its axis space.  The spec *string* form is accepted anywhere
a workload name is today — ``repro bench``, ``repro lint workload:...``
(via ``gen:`` directly), the serve endpoints, the trace and result cache
keys — so an unbounded family of programs rides the existing cell
machinery.

Sweepable axes (every generator consumes the subset it documents):

=========  ======================================================
``seed``   RNG seed keying all structural choices (int >= 0)
``calls``  call density: fraction of kernel work behind calls
``branch`` branch-slice weight: fraction of branchy kernels
``ldst``   load/store fraction: array-traffic weight
``fp``     genuine floating-point fraction
``depth``  loop nesting depth (1..4)
``scale``  default workload scale (positive int; a bench cell's
           ``scale`` still overrides it, like any workload)
=========  ======================================================

Spec strings have one canonical spelling — axes sorted by name, floats
normalized by ``repr`` — produced by :meth:`GeneratorSpec.canonical`.
Parsing is strict: unknown generators, unknown axes, malformed or
out-of-range values all raise :class:`~repro.errors.WorkloadError` with
the documented grammar, so a typo in a bench matrix fails loudly
instead of silently generating the wrong program.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import WorkloadError

#: Prefix marking a generator spec wherever workload names are accepted.
GEN_PREFIX = "gen:"

#: Fraction axes, validated into [0, 1].
_FRACTION_AXES = ("calls", "branch", "ldst", "fp")


@dataclass(frozen=True, slots=True)
class GeneratorSpec:
    """One point of a generator's axis space (defaults are per-axis)."""

    generator: str
    seed: int = 0
    calls: float = 0.25
    branch: float = 0.35
    ldst: float = 0.4
    fp: float = 0.0
    depth: int = 2
    scale: int = 120

    def __post_init__(self) -> None:
        from repro.gen.emit import GENERATORS

        if self.generator not in GENERATORS:
            raise WorkloadError(
                f"unknown generator {self.generator!r}; "
                f"available: {sorted(GENERATORS)}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise WorkloadError(f"generator seed must be a non-negative int, got {self.seed!r}")
        for axis in _FRACTION_AXES:
            value = getattr(self, axis)
            if not isinstance(value, float) or not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"generator axis {axis!r} must be a float in [0, 1], got {value!r}"
                )
        if not isinstance(self.depth, int) or not 1 <= self.depth <= 4:
            raise WorkloadError(f"generator axis 'depth' must be an int in [1, 4], got {self.depth!r}")
        if not isinstance(self.scale, int) or self.scale <= 0:
            raise WorkloadError(f"generator axis 'scale' must be a positive int, got {self.scale!r}")

    # -- spec-string codec ------------------------------------------------
    def canonical(self) -> str:
        """The canonical ``gen:...`` spelling of this spec.

        Only axes that differ from their defaults are spelled out, in
        sorted order, so equal specs have equal strings (and therefore
        equal cache keys when used as workload names).
        """
        parts = []
        for field in sorted(fields(self), key=lambda f: f.name):
            if field.name == "generator":
                continue
            value = getattr(self, field.name)
            if value == field.default:
                continue
            parts.append(f"{field.name}={_axis_text(value)}")
        query = "&".join(parts)
        return f"{GEN_PREFIX}{self.generator}" + (f"?{query}" if query else "")

    @classmethod
    def parse(cls, spec: str) -> "GeneratorSpec":
        """Parse a ``gen:<generator>?axis=value&...`` spec string."""
        if not spec.startswith(GEN_PREFIX):
            raise WorkloadError(
                f"generator spec must start with {GEN_PREFIX!r}, got {spec!r}"
            )
        body = spec[len(GEN_PREFIX):]
        generator, _, query = body.partition("?")
        if not generator:
            raise WorkloadError(
                f"empty generator name in {spec!r}; expected "
                "gen:<generator>?axis=value&..."
            )
        axes: dict[str, int | float] = {}
        known = {f.name: f for f in fields(cls) if f.name != "generator"}
        if query:
            for item in query.split("&"):
                name, sep, text = item.partition("=")
                if not sep or not name or not text:
                    raise WorkloadError(
                        f"malformed axis {item!r} in {spec!r}; expected axis=value"
                    )
                if name not in known:
                    raise WorkloadError(
                        f"unknown generator axis {name!r} in {spec!r}; "
                        f"axes: {sorted(known)}"
                    )
                if name in axes:
                    raise WorkloadError(f"duplicate axis {name!r} in {spec!r}")
                axes[name] = _axis_value(name, text, spec)
        return cls(generator=generator, **axes)


def _axis_text(value: int | float) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _axis_value(name: str, text: str, spec: str) -> int | float:
    if name in _FRACTION_AXES:
        try:
            return float(text)
        except ValueError:
            raise WorkloadError(
                f"axis {name!r} in {spec!r} needs a float, got {text!r}"
            ) from None
    try:
        return int(text)
    except ValueError:
        raise WorkloadError(
            f"axis {name!r} in {spec!r} needs an integer, got {text!r}"
        ) from None


def is_generator_spec(name: str) -> bool:
    """True when ``name`` is spelled as a generator spec (may still fail
    to parse — use :meth:`GeneratorSpec.parse` for validation)."""
    return name.startswith(GEN_PREFIX)


__all__ = ["GEN_PREFIX", "GeneratorSpec", "is_generator_spec"]
