"""Crash bundles and the replayable regression corpus.

Two artifact kinds fall out of a fuzzing campaign:

* **crash bundles** — one directory per failing seed (``program.mc``,
  ``meta.json``, ``diagnostics.txt``), self-contained enough to
  reproduce the failure on another machine: CI uploads them as build
  artifacts, and ``repro fuzz --replay <bundle-or-.mc>`` re-runs the
  oracle on one.

* **regression corpus** — shrunk programs committed under
  ``tests/corpus/regressions/`` *after the underlying bug is fixed*.
  Tier-1 pytest replays every corpus file through the honest
  differential oracle and expects zero violations, pinning each fixed
  bug forever.  Files carry a comment header recording where they came
  from (see :func:`write_regression`).

Promotion flow (also in ``docs/fuzzing.md``): fuzz finds a failure →
shrink it → fix the bug → ``repro fuzz --promote`` the shrunk program →
commit the new file under ``tests/corpus/regressions/``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.errors import ReproError
from repro.gen.fuzz import DifferentialOracle, FuzzCase

#: Default crash-bundle directory (CI uploads it on failure).
DEFAULT_CRASH_DIR = "repro-fuzz-crashes"

#: The committed regression corpus, relative to the repo root.
REGRESSION_DIR = Path("tests") / "corpus" / "regressions"


def write_crash_bundle(
    crash_dir: str | Path, case: FuzzCase, extra_meta: dict | None = None
) -> Path:
    """Write one failing case as a self-contained bundle directory."""
    bundle = Path(crash_dir) / f"seed-{case.seed}"
    bundle.mkdir(parents=True, exist_ok=True)
    (bundle / "program.mc").write_text(case.source)
    meta = {
        "seed": case.seed,
        "kinds": sorted({v.kind for v in case.violations}),
        "violations": [asdict(v) for v in case.violations],
    }
    if extra_meta:
        meta.update(extra_meta)
    (bundle / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
    lines = [f"[{v.kind}] {v.detail}" for v in case.violations]
    (bundle / "diagnostics.txt").write_text("\n".join(lines) + "\n")
    return bundle


def load_crash_source(path: str | Path) -> str:
    """MiniC source from a crash bundle directory or a bare ``.mc`` file."""
    p = Path(path)
    if p.is_dir():
        p = p / "program.mc"
    if not p.is_file():
        raise ReproError(f"no crash program at {p}")
    return p.read_text()


def write_regression(
    directory: str | Path,
    name: str,
    source: str,
    *,
    seed: int | None = None,
    kinds: list[str] | None = None,
    note: str = "",
) -> Path:
    """Write a shrunk program into the regression corpus.

    The header comments are documentation only — the replay harness
    runs the program itself; it never parses the header.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if not name.endswith(".mc"):
        name += ".mc"
    header = ["// repro-fuzz regression"]
    if seed is not None:
        header.append(f"// found by: repro fuzz (builder seed {seed})")
    if kinds:
        header.append(f"// original violation kinds: {', '.join(sorted(kinds))}")
    if note:
        header.append(f"// note: {note}")
    path = directory / name
    path.write_text("\n".join(header) + "\n" + source)
    return path


def iter_regressions(directory: str | Path = REGRESSION_DIR) -> list[Path]:
    """All committed regression programs, deterministically ordered."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.mc"))


def replay_regression(
    path: str | Path, oracle: DifferentialOracle | None = None
) -> FuzzCase:
    """Run one corpus file through the (honest) differential oracle.

    Returns the :class:`FuzzCase`; a green replay has ``case.ok``.
    """
    oracle = oracle or DifferentialOracle()
    return oracle.check_source(Path(path).read_text())


__all__ = [
    "DEFAULT_CRASH_DIR",
    "REGRESSION_DIR",
    "iter_regressions",
    "load_crash_source",
    "replay_regression",
    "write_crash_bundle",
    "write_regression",
]
