"""ASCII bar charts, in the spirit of the paper's Figures 8-10.

The report CLI renders each figure both as a table (exact values) and as
a grouped bar chart so the shape comparison with the paper's plots is
immediate in a terminal.
"""

from __future__ import annotations

_FULL = "#"
_HALF = "+"


def bar(value: float, scale: float, width: int = 40) -> str:
    """Render ``value`` as a bar against ``scale`` (the axis maximum)."""
    if scale <= 0:
        return ""
    units = max(0.0, value) / scale * width
    whole = int(units)
    text = _FULL * whole
    if units - whole >= 0.5:
        text += _HALF
    return text


def grouped_bars(
    title: str,
    rows: list[tuple[str, dict[str, float]]],
    unit: str = "%",
    width: int = 40,
) -> str:
    """Render a grouped bar chart.

    Args:
        title: Chart heading.
        rows: ``(group label, {series name: value})`` in display order.
        unit: Unit suffix for the value column.
        width: Bar width in characters at the axis maximum.
    """
    if not rows:
        return title
    scale = max(
        (value for _, series in rows for value in series.values()),
        default=0.0,
    )
    scale = max(scale, 1e-9)
    label_width = max(len(label) for label, _ in rows)
    series_width = max(len(name) for _, series in rows for name in series)
    lines = [title, f"(axis maximum: {scale:.1f}{unit})"]
    for label, series in rows:
        for i, (name, value) in enumerate(series.items()):
            group = label if i == 0 else ""
            lines.append(
                f"{group:{label_width}s} {name:{series_width}s} "
                f"{value:6.1f}{unit} |{bar(value, scale, width)}"
            )
    return "\n".join(lines)


def figure_chart(rows, value_attrs: dict[str, str], title: str) -> str:
    """Chart experiment rows (Figure8Row / SpeedupRow objects).

    ``value_attrs`` maps series labels to row attribute names.
    """
    data = [
        (row.benchmark, {name: getattr(row, attr) for name, attr in value_attrs.items()})
        for row in rows
    ]
    return grouped_bars(title, data)
