"""§7.5 — applicability to floating-point programs.

The paper applied both schemes to SPEC92/95 FP programs and found
negligible change for all but one: *ear*, where 18 % of the integer
(branch and store-value) computation moved to FPa and produced an 18 %
speedup on the 4-way machine.  This experiment measures the same on the
FP surrogates: ``ear`` should show a clear gain, ``swim`` roughly none,
and neither may slow down materially.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import results_by_cell, run_cells
from repro.bench.matrix import Cell
from repro.workloads import FP_BENCHMARKS

#: Paper §7.5: ear gains ~18 %; everything else is negligible.
PAPER_EAR_SPEEDUP_PERCENT = 18.0


@dataclass(frozen=True, slots=True)
class FpRow:
    benchmark: str
    base_fp_fraction: float  # how busy the FP subsystem already is
    basic_speedup_percent: float
    advanced_speedup_percent: float
    extra_offload_percent: float  # advanced offload beyond the baseline's


def run(
    benchmarks: list[str] | None = None,
    scale: int | None = None,
    *,
    jobs: int = 1,
    cache=None,
) -> list[FpRow]:
    """Measure both schemes on the floating-point surrogates."""
    names = list(benchmarks or FP_BENCHMARKS)
    cells = [
        Cell(name, scheme, 4, scale)
        for name in names
        for scheme in ("conventional", "basic", "advanced")
    ]
    results = results_by_cell(run_cells(cells, jobs=jobs, cache=cache))
    rows = []
    for name in names:
        baseline = results[Cell(name, "conventional", 4, scale)]
        basic = results[Cell(name, "basic", 4, scale)]
        advanced = results[Cell(name, "advanced", 4, scale)]
        rows.append(
            FpRow(
                benchmark=name,
                base_fp_fraction=baseline.offload_fraction,
                basic_speedup_percent=100.0 * (basic.speedup_over(baseline) - 1.0),
                advanced_speedup_percent=100.0 * (advanced.speedup_over(baseline) - 1.0),
                extra_offload_percent=100.0
                * (advanced.offload_fraction - baseline.offload_fraction),
            )
        )
    return rows


def format_table(rows: list[FpRow]) -> str:
    lines = [
        "Section 7.5: floating-point programs (4-way machine)",
        f"{'benchmark':10s} {'fp-busy':>8s} {'+offload':>9s} {'basic':>8s} {'advanced':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:10s} {100 * row.base_fp_fraction:7.1f}% "
            f"{row.extra_offload_percent:+8.1f}% "
            f"{row.basic_speedup_percent:+7.1f}% {row.advanced_speedup_percent:+8.1f}%"
        )
    return "\n".join(lines)
