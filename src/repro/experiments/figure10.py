"""Figure 10 — Speedups on the 8-way (4 int + 4 fp) machine.

Same measurement as Figure 9 on the wider machine.  The paper's
headline: improvements are much smaller than on the 4-way machine
because the 4-wide INT subsystem alone already covers most of the
available ILP; only high-parallelism programs (m88ksim) still benefit
appreciably.
"""

from __future__ import annotations

from repro.experiments.figure9 import SpeedupRow, format_table as _format, run as _run

#: Approximate Figure 10 values (percent speedup on the 8-way machine).
PAPER_FIGURE10 = {
    "compress": {"basic": 2.0, "advanced": 4.0},
    "gcc": {"basic": 1.5, "advanced": 2.0},
    "go": {"basic": 1.0, "advanced": 2.0},
    "ijpeg": {"basic": 3.0, "advanced": 7.0},
    "li": {"basic": 1.0, "advanced": 1.0},
    "m88ksim": {"basic": 5.0, "advanced": 12.0},
    "perl": {"basic": 1.0, "advanced": 2.0},
}

WIDTH = 8


def run(
    benchmarks: list[str] | None = None,
    scale: int | None = None,
    *,
    jobs: int = 1,
    cache=None,
) -> list[SpeedupRow]:
    """Regenerate Figure 10 (8-way machine)."""
    return _run(
        benchmarks,
        scale=scale,
        width=WIDTH,
        paper_values=PAPER_FIGURE10,
        jobs=jobs,
        cache=cache,
    )


def format_table(rows: list[SpeedupRow]) -> str:
    return _format(rows, title="Figure 10: speedups on an 8-way machine")
