"""Full-report driver: regenerate every table and figure.

Run as a module::

    python -m repro.experiments.report              # everything
    python -m repro.experiments.report fig8 fig9    # selected experiments
    python -m repro.experiments.report --jobs 4     # parallel pipeline runs

Pipeline cells fan out over the bench harness (``--jobs``) and replay
from the on-disk cache when ``REPRO_BENCH_CACHE=<dir>`` is set.

Table 1 (machine parameters) and Table 2 (benchmarks) are static
configuration; they are printed from the live objects so the report
always reflects what the simulator actually uses.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.sim.config import MachineConfig, eight_way, four_way
from repro.workloads import WORKLOADS


def format_table1() -> str:
    """Render Table 1 from the live machine configurations."""

    def describe(config: MachineConfig) -> dict[str, str]:
        return {
            "Fetch width": f"any {config.fetch_width} instructions",
            "Decode/Rename width": f"any {config.decode_width} instructions",
            "Issue window size": f"{config.int_window} int + {config.fp_window} fp",
            "Max in-flight": str(config.max_inflight),
            "Retire width": str(config.retire_width),
            "Functional units": f"{config.int_units} Int + {config.fp_units} Fp",
            "FU latency": f"{config.mul_latency} cyc mul, {config.div_latency} cyc div, 1 cyc rest",
            "Load/store ports": str(config.ls_ports),
            "Physical registers": f"{config.phys_int} int + {config.phys_fp} fp",
            "I-cache": (
                f"{config.icache.size_bytes // 1024}KB, {config.icache.assoc}-way, "
                f"{config.icache.line_bytes}B lines, {config.icache.hit_cycles} cyc hit, "
                f"{config.icache.miss_penalty} cyc miss"
            ),
            "D-cache": (
                f"{config.dcache.size_bytes // 1024}KB, {config.dcache.assoc}-way, "
                f"{config.dcache.line_bytes}B lines, {config.dcache.hit_cycles} cyc hit, "
                f"{config.dcache.miss_penalty} cyc miss"
            ),
            "Branch predictor": (
                f"gshare, {config.predictor.table_entries // 1024}K {config.predictor.counter_bits}-bit "
                f"counters, {config.predictor.history_bits}-bit history"
            ),
        }

    four = describe(four_way())
    eight = describe(eight_way())
    lines = [
        "Table 1: machine parameters",
        f"{'Parameter':22s} {'4-way':>34s} {'8-way':>34s}",
    ]
    for key in four:
        lines.append(f"{key:22s} {four[key]:>34s} {eight[key]:>34s}")
    return "\n".join(lines)


def format_table2() -> str:
    """Render Table 2 from the live workload registry."""
    lines = [
        "Table 2: benchmark programs (surrogates)",
        f"{'benchmark':10s} {'kind':5s} {'paper input':22s} description",
    ]
    for spec in WORKLOADS.values():
        lines.append(
            f"{spec.name:10s} {spec.category:5s} {spec.paper_input:22s} {spec.description}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None, jobs: int | None = None) -> int:
    """Regenerate the requested experiments (all by default)."""
    from repro.bench.cache import ResultCache
    from repro.experiments import (
        charts,
        figure8,
        figure9,
        figure10,
        profile_agreement,
        slices,
        table_fp,
        table_overhead,
    )

    parser = argparse.ArgumentParser(prog="repro.experiments.report")
    parser.add_argument("experiments", nargs="*", default=[])
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for pipeline cells; 0 = one "
                             "per CPU (default: 1)")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if jobs is not None:
        args.jobs = jobs
    n_jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache = ResultCache.from_env()
    fanout = dict(jobs=n_jobs, cache=cache)

    def _fig8() -> str:
        rows = figure8.run(**fanout)
        return (
            figure8.format_table(rows)
            + "\n\n"
            + charts.figure_chart(
                rows,
                {"basic": "basic_percent", "advanced": "advanced_percent"},
                "Figure 8 as bars (% of dynamic instructions in FPa)",
            )
        )

    def _speedup_chart(rows, title):
        return charts.figure_chart(
            rows,
            {
                "basic": "basic_speedup_percent",
                "advanced": "advanced_speedup_percent",
            },
            title,
        )

    def _fig9() -> str:
        rows = figure9.run(**fanout)
        return (
            figure9.format_table(rows)
            + "\n\n"
            + _speedup_chart(rows, "Figure 9 as bars (% speedup, 4-way)")
        )

    def _fig10() -> str:
        rows = figure10.run(**fanout)
        return (
            figure10.format_table(rows)
            + "\n\n"
            + _speedup_chart(rows, "Figure 10 as bars (% speedup, 8-way)")
        )

    wanted = set(args.experiments)
    experiments = {
        "table1": lambda: format_table1(),
        "table2": lambda: format_table2(),
        "slices": lambda: slices.format_table(slices.run()),
        "agreement": lambda: profile_agreement.format_table(
            profile_agreement.run()
        ),
        "fig8": _fig8,
        "fig9": _fig9,
        "fig10": _fig10,
        "overhead": lambda: table_overhead.format_table(
            table_overhead.run(**fanout)
        ),
        "fp": lambda: table_fp.format_table(table_fp.run(**fanout)),
    }
    if not wanted:
        wanted = set(experiments)
    unknown = wanted - set(experiments)
    if unknown:
        print(f"unknown experiments: {sorted(unknown)}; "
              f"available: {sorted(experiments)}", file=sys.stderr)
        return 2
    for key in experiments:
        if key not in wanted:
            continue
        start = time.time()
        print(experiments[key]())
        print(f"[{key}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
