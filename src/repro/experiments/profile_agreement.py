"""Static-vs-measured profile agreement and its partition impact.

The advanced scheme is profile-driven; the paper assumes a measured
profile is available.  :mod:`repro.analysis.freq` estimates one purely
statically (Ball/Wu–Larus heuristics).  This experiment quantifies, per
workload:

* how well the static profile matches the measured one (normalized
  per-function overlap, hottest-block agreement — see
  :mod:`repro.analysis.profilecmp`), and
* what that disagreement *costs*: the advanced partitions computed from
  each profile are compared node-by-node (Jaccard agreement of the FPa
  sets) and by total offloaded instruction count.

The punchline mirrors the Profit model's scale invariance: partition
decisions depend only on the per-component *sign* of
``Benefit − Overhead``, so even moderately accurate static frequencies
tend to reproduce the measured partitions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.freq import static_profile
from repro.analysis.profilecmp import compare_profiles
from repro.partition.advanced import advanced_partition
from repro.partition.partition import partition_stats
from repro.runtime.interp import run_program
from repro.workloads import WORKLOADS, compile_workload


@dataclass(frozen=True, slots=True)
class AgreementRow:
    """Static-profile quality figures for one benchmark."""

    benchmark: str
    weighted_overlap: float
    hottest_match_fraction: float
    offloaded_static: int
    offloaded_measured: int
    decision_agreement: float

    def to_dict(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "weighted_overlap": round(self.weighted_overlap, 6),
            "hottest_match_fraction": round(self.hottest_match_fraction, 6),
            "offloaded_static": self.offloaded_static,
            "offloaded_measured": self.offloaded_measured,
            "decision_agreement": round(self.decision_agreement, 6),
        }


def characterize(name: str, scale: int | None = None) -> AgreementRow:
    """Compare static against measured profiles for one benchmark."""
    program = compile_workload(name, scale)
    static = static_profile(program)
    measured = run_program(program).profile
    agreement = compare_profiles(program, static, measured)

    offload_static = offload_measured = 0
    intersection = union = 0
    for func in program.functions.values():
        part_s = advanced_partition(func, profile=static)
        part_m = advanced_partition(func, profile=measured)
        offload_static += partition_stats(part_s)["offloaded_instructions"]
        offload_measured += partition_stats(part_m)["offloaded_instructions"]
        intersection += len(part_s.fp & part_m.fp)
        union += len(part_s.fp | part_m.fp)
    return AgreementRow(
        benchmark=name,
        weighted_overlap=agreement.weighted_overlap,
        hottest_match_fraction=agreement.hottest_match_fraction,
        offloaded_static=offload_static,
        offloaded_measured=offload_measured,
        decision_agreement=intersection / union if union else 1.0,
    )


def run(
    benchmarks: list[str] | None = None, scale: int | None = None
) -> list[AgreementRow]:
    return [
        characterize(name, scale) for name in benchmarks or sorted(WORKLOADS)
    ]


def format_table(rows: list[AgreementRow]) -> str:
    lines = [
        "Static profile vs measured: agreement and partition impact",
        "(advanced-scheme partitions recomputed under each profile)",
        f"{'benchmark':10s} {'overlap':>8s} {'hottest':>8s} "
        f"{'offl(stat)':>10s} {'offl(meas)':>10s} {'decisions':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:10s} {100 * row.weighted_overlap:7.1f}% "
            f"{100 * row.hottest_match_fraction:7.1f}% "
            f"{row.offloaded_static:10d} {row.offloaded_measured:10d} "
            f"{100 * row.decision_agreement:8.1f}%"
        )
    return "\n".join(lines)
