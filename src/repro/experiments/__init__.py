"""Experiment harness: regenerates every table and figure of the paper.

Each experiment module exposes a ``run(...)`` returning structured rows
plus a ``format_table(rows)`` for human-readable output:

* :mod:`figure8`  — size of the FPa partition, basic vs advanced.
* :mod:`figure9`  — speedups over the conventional 4-way machine.
* :mod:`figure10` — speedups on the 8-way machine.
* :mod:`table_overhead` — §7.2 overheads of the advanced scheme.
* :mod:`table_fp` — §7.5 floating-point program behaviour.
* :mod:`runner`   — the shared compile/partition/allocate/simulate
  pipeline.
"""

from repro.experiments.runner import (
    BenchmarkResult,
    PipelineArtifacts,
    prepare_program,
    run_benchmark,
    run_pair,
)

__all__ = [
    "BenchmarkResult",
    "PipelineArtifacts",
    "prepare_program",
    "run_benchmark",
    "run_pair",
]
