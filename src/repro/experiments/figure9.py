"""Figure 9 — Speedups on the 4-way (2 int + 2 fp) machine.

For each benchmark, the percentage performance improvement of the
basic- and advanced-partitioned programs over the identical conventional
machine running the unpartitioned program.  Paper result: 2.5–23.1 %
for the advanced scheme, with m88ksim (23 %), ijpeg and compress
(> 10 %) at the top and li at the bottom; the advanced scheme beats the
basic scheme everywhere except li and m88ksim (where load imbalance
bites, §7.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import results_by_cell, run_cells
from repro.bench.matrix import Cell
from repro.workloads import INT_BENCHMARKS

#: Approximate Figure 9 values (percent speedup on the 4-way machine).
PAPER_FIGURE9 = {
    "compress": {"basic": 6.0, "advanced": 11.0},
    "gcc": {"basic": 4.0, "advanced": 5.0},
    "go": {"basic": 2.0, "advanced": 5.0},
    "ijpeg": {"basic": 8.0, "advanced": 17.0},
    "li": {"basic": 3.0, "advanced": 2.5},
    "m88ksim": {"basic": 10.0, "advanced": 23.0},
    "perl": {"basic": 3.0, "advanced": 6.0},
}

WIDTH = 4


@dataclass(frozen=True, slots=True)
class SpeedupRow:
    benchmark: str
    basic_speedup_percent: float
    advanced_speedup_percent: float
    paper_basic: float
    paper_advanced: float
    baseline_cycles: int
    advanced_cycles: int


def run(
    benchmarks: list[str] | None = None,
    scale: int | None = None,
    width: int = WIDTH,
    paper_values: dict | None = None,
    *,
    jobs: int = 1,
    cache=None,
) -> list[SpeedupRow]:
    """Regenerate the speedup figure at the given machine width.

    ``jobs``/``cache`` fan the cells out over the bench harness.
    """
    if paper_values is None:
        paper_values = PAPER_FIGURE9
    names = list(benchmarks or INT_BENCHMARKS)
    cells = [
        Cell(name, scheme, width, scale)
        for name in names
        for scheme in ("conventional", "basic", "advanced")
    ]
    results = results_by_cell(run_cells(cells, jobs=jobs, cache=cache))
    rows = []
    for name in names:
        baseline = results[Cell(name, "conventional", width, scale)]
        basic = results[Cell(name, "basic", width, scale)]
        advanced = results[Cell(name, "advanced", width, scale)]
        paper = paper_values.get(name, {"basic": float("nan"), "advanced": float("nan")})
        rows.append(
            SpeedupRow(
                benchmark=name,
                basic_speedup_percent=100.0 * (basic.speedup_over(baseline) - 1.0),
                advanced_speedup_percent=100.0 * (advanced.speedup_over(baseline) - 1.0),
                paper_basic=paper["basic"],
                paper_advanced=paper["advanced"],
                baseline_cycles=baseline.cycles,
                advanced_cycles=advanced.cycles,
            )
        )
    return rows


def format_table(rows: list[SpeedupRow], title: str = "Figure 9: speedups on a 4-way machine") -> str:
    lines = [
        title,
        f"{'benchmark':10s} {'basic':>8s} {'advanced':>9s}   {'paper-b':>8s} {'paper-a':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:10s} {row.basic_speedup_percent:+7.1f}% "
            f"{row.advanced_speedup_percent:+8.1f}%   "
            f"{row.paper_basic:+7.1f}% {row.paper_advanced:+7.1f}%"
        )
    return "\n".join(lines)
