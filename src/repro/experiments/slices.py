"""Dynamic slice characterization (the paper's §4 premise).

Palacharla & Smith's measurement — cited in §4 as the bound on how much
the compiler could ever offload — is that "the LdSt slices of integer
programs account for close to 50 % of all dynamic instructions executed".
This experiment reproduces that characterization on the surrogates: each
dynamic instruction is attributed to the LdSt slice, the (pure) branch
and store-value slices, call/return glue, or the remainder.

Attribution is static-node-based and mirrors the partitioning view: a
static instruction belongs to the LdSt slice if any of its RDG nodes is
in the union of backward slices of address nodes; remaining instructions
belong to branch/store-value slices if they reach only those terminals.
Dynamic fractions weight each static instruction by its execution count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.opcodes import OpKind
from repro.rdg.build import build_rdg
from repro.rdg.slices import ldst_slice
from repro.runtime.interp import run_program
from repro.workloads import INT_BENCHMARKS, compile_workload


@dataclass(frozen=True, slots=True)
class SliceRow:
    """Dynamic instruction shares for one benchmark (fractions sum to 1,
    modulo rounding)."""

    benchmark: str
    ldst_fraction: float
    memory_ops_fraction: float  # the loads/stores themselves
    offloadable_fraction: float  # pure branch/store-value slice work
    call_glue_fraction: float
    other_fraction: float


def characterize(name: str, scale: int | None = None) -> SliceRow:
    """Measure the dynamic slice composition of one benchmark."""
    program = compile_workload(name, scale)
    result = run_program(program)
    profile = result.profile

    totals = {"ldst": 0.0, "mem": 0.0, "offloadable": 0.0, "call": 0.0, "other": 0.0}
    grand = 0.0
    for func in program.functions.values():
        rdg = build_rdg(func)
        in_ldst = ldst_slice(rdg)
        ldst_uids = {node.uid for node in in_ldst}
        counts = profile.for_function(func)
        block_of = func.block_of()
        for instr in func.instructions():
            weight = counts.get(block_of[instr.uid], 0.0)
            if weight <= 0.0:
                continue
            grand += weight
            kind = instr.kind
            if kind in (OpKind.LOAD, OpKind.STORE):
                totals["mem"] += weight
            elif kind in (OpKind.CALL, OpKind.RET, OpKind.PARAM, OpKind.JUMP):
                totals["call"] += weight
            elif instr.uid in ldst_uids:
                totals["ldst"] += weight
            elif kind in (OpKind.ALU, OpKind.MUL, OpKind.DIV, OpKind.BRANCH,
                          OpKind.COPY):
                totals["offloadable"] += weight
            else:
                totals["other"] += weight

    if grand <= 0.0:
        raise ValueError(f"{name}: empty profile")
    return SliceRow(
        benchmark=name,
        ldst_fraction=totals["ldst"] / grand,
        memory_ops_fraction=totals["mem"] / grand,
        offloadable_fraction=totals["offloadable"] / grand,
        call_glue_fraction=totals["call"] / grand,
        other_fraction=totals["other"] / grand,
    )


def run(benchmarks: list[str] | None = None, scale: int | None = None) -> list[SliceRow]:
    return [characterize(name, scale) for name in benchmarks or INT_BENCHMARKS]


def format_table(rows: list[SliceRow]) -> str:
    lines = [
        "Slice characterization (dynamic shares; §4's premise: memory",
        "addressing+access bounds the FPa partition near 50%)",
        f"{'benchmark':10s} {'addr-slice':>10s} {'mem ops':>8s} "
        f"{'ldst total':>10s} {'offloadable':>11s} {'call glue':>9s}",
    ]
    for row in rows:
        ldst_total = row.ldst_fraction + row.memory_ops_fraction
        lines.append(
            f"{row.benchmark:10s} {100 * row.ldst_fraction:9.1f}% "
            f"{100 * row.memory_ops_fraction:7.1f}% {100 * ldst_total:9.1f}% "
            f"{100 * row.offloadable_fraction:10.1f}% "
            f"{100 * row.call_glue_fraction:8.1f}%"
        )
    return "\n".join(lines)
