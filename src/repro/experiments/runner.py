"""The shared experiment pipeline.

One benchmark run is::

    MiniC source -> optimized IR -> [profile run]
        -> partition (basic | advanced) -> rewrite -> register allocation
        -> traced functional run -> timing simulation (Table 1 machine)

The *conventional* configuration skips partitioning but goes through the
identical compiler (same optimizer, same register allocator) and the
identical machine — the FP subsystem simply sits idle, as in the paper's
baseline.  Functional results (checksums) are asserted equal across all
configurations of a benchmark: a partitioning bug cannot silently
produce a "speedup".
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.checkpoint import slot_from_env
from repro.errors import PartitionError, ReproError
from repro.faults import fault_point
from repro.ir.program import Program
from repro.ir.verify import verify_program
from repro.partition.cost import CostParams, ExecutionProfile
from repro.partition.program import partition_program
from repro.progress import report_progress
from repro.regalloc.linear_scan import allocate_program
from repro.runtime.interp import run_program
from repro.sim.config import MachineConfig, eight_way, four_way
from repro.sim.pipeline import TimingSimulator
from repro.sim.stats import SimStats
from repro.trace.pack import PackedTrace, pack_entries, program_fingerprint
from repro.trace.store import load_trace, store_trace, trace_key
from repro.workloads import compile_workload

SCHEMES = ("conventional", "basic", "advanced")

#: Environment opt-in for graceful degradation (advanced -> basic on
#: PartitionError); truthy values enable it wherever callers did not
#: pass ``degrade`` explicitly.
DEGRADE_ENV = "REPRO_DEGRADE"


def _degrade_from_env() -> bool:
    return os.environ.get(DEGRADE_ENV, "").strip() not in ("", "0")


@dataclass(eq=False, slots=True)
class PipelineArtifacts:
    """Everything produced while preparing one program configuration."""

    program: Program
    scheme: str
    profile: ExecutionProfile | None = None
    partition_summary: dict[str, int] = field(default_factory=dict)
    static_instructions: int = 0
    #: The advanced scheme failed and the basic scheme was substituted.
    degraded: bool = False


@dataclass(eq=False, slots=True)
class BenchmarkResult:
    """Outcome of simulating one (benchmark, scheme, machine) triple."""

    name: str
    scheme: str
    machine: str
    checksum: int | None
    dynamic_instructions: int
    offload_fraction: float
    cycles: int
    ipc: float
    stats: SimStats
    partition_summary: dict[str, int]
    static_instructions: int
    mix: dict[str, int]
    #: True when the advanced scheme fell back to basic (graceful
    #: degradation; ``scheme`` still records what was requested).
    degraded: bool = False

    def speedup_over(self, baseline: "BenchmarkResult") -> float:
        """Relative speedup of this run over ``baseline`` (1.0 = equal)."""
        if self.checksum != baseline.checksum:
            raise ReproError(
                f"{self.name}: checksum mismatch between {self.scheme} "
                f"({self.checksum}) and {baseline.scheme} ({baseline.checksum})"
            )
        return baseline.cycles / self.cycles


def _summarize_partition(result) -> dict[str, int]:
    summary: dict[str, int] = {}
    for stats in result.stats.values():
        for key, value in stats.items():
            summary[key] = summary.get(key, 0) + value
    summary["copies_eliminated"] = result.copies_eliminated
    return summary


def prepare_program(
    name: str,
    scheme: str,
    scale: int | None = None,
    cost_params: CostParams | None = None,
    use_profile: bool = True,
    regalloc: bool = True,
    balance_limit: float | None = None,
    interprocedural: bool = False,
    degrade: bool | None = None,
) -> PipelineArtifacts:
    """Compile (and for non-conventional schemes, partition) a workload.

    Args:
        name: Workload name from :mod:`repro.workloads`.
        scheme: ``"conventional"``, ``"basic"`` or ``"advanced"``.
        scale: Workload scale override.
        cost_params: Advanced-scheme cost parameters.
        use_profile: Feed a measured basic-block profile to the advanced
            scheme (otherwise it falls back to the probabilistic
            estimate, an ablation of §6.1).
        regalloc: Run register allocation (paper order: after
            partitioning).
        degrade: Graceful degradation — when the *advanced* scheme
            raises :class:`PartitionError`, recompile and substitute the
            basic scheme, flagging the artifacts ``degraded`` instead of
            failing the run.  ``None`` reads the ``REPRO_DEGRADE``
            environment opt-in.
    """
    if scheme not in SCHEMES:
        raise ReproError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    if degrade is None:
        degrade = _degrade_from_env()
    # fault-point labels carry the scheme so a REPRO_FAULTS ``match=``
    # can target e.g. only the advanced partition attempt
    where = f"{name}/{scheme}"
    fault_point("compile", where)
    program = compile_workload(name, scale)
    artifacts = PipelineArtifacts(program=program, scheme=scheme)

    if scheme != "conventional":
        profile: ExecutionProfile | None = None
        try:
            if use_profile:
                fault_point("profile", where)
                profile = run_program(program).profile
                artifacts.profile = profile
            fault_point("partition", where)
            result = partition_program(
                program,
                scheme,
                profile=profile,
                params=cost_params,
                balance_limit=balance_limit,
                interprocedural=interprocedural,
            )
        except PartitionError:
            if not degrade or scheme != "advanced":
                raise
            # the failed attempt may have partially rewritten the IR, so
            # rebuild from source before substituting the basic scheme
            program = compile_workload(name, scale)
            artifacts.program = program
            profile = run_program(program).profile if use_profile else None
            artifacts.profile = profile
            result = partition_program(
                program,
                "basic",
                profile=profile,
                params=cost_params,
                balance_limit=balance_limit,
                interprocedural=interprocedural,
            )
            artifacts.degraded = True
        artifacts.partition_summary = _summarize_partition(result)

    if regalloc:
        fault_point("regalloc", where)
        allocate_program(program)
        verify_program(program)
    artifacts.static_instructions = program.instruction_count()
    return artifacts


def _capture_or_replay(
    name: str,
    scheme: str,
    artifacts: PipelineArtifacts,
    *,
    scale: int | None,
    cost_params: CostParams | None,
    use_profile: bool,
    regalloc: bool,
    balance_limit: float | None,
    interprocedural: bool,
    where: str,
) -> tuple[PackedTrace, str]:
    """The packed dynamic trace for ``artifacts`` plus its trace key —
    replayed when possible.

    The trace depends only on the program (workload + partition options
    + code version), never on the machine config, so the in-process pool
    and the opt-in ``REPRO_TRACE_CACHE`` store let a sweep over machine
    configurations interpret each (workload, scheme) exactly once.  A
    replayed pack is trusted only when its recorded program fingerprint
    matches the freshly prepared program — a stale or foreign pack falls
    back to interpretation.  The key is returned because the simulation
    checkpoint slot is derived from it (trace key + machine config).
    """
    key = trace_key(
        name,
        scheme,
        scale=scale,
        cost_params=cost_params,
        use_profile=use_profile,
        regalloc=regalloc,
        balance_limit=balance_limit,
        interprocedural=interprocedural,
        degraded=artifacts.degraded,
    )
    fingerprint = program_fingerprint(artifacts.program)
    packed = load_trace(key, label=where)
    if packed is not None and packed.meta.get("program_sha256") == fingerprint:
        return packed, key
    run = run_program(artifacts.program, collect_trace=True)
    packed = pack_entries(
        run.trace,
        value=run.value,
        meta={
            "program_sha256": fingerprint,
            "workload": name,
            "scheme": scheme,
            "scale": scale,
            "instructions": run.instructions,
        },
    )
    store_trace(key, packed, label=where)
    return packed, key


def run_benchmark(
    name: str,
    scheme: str = "advanced",
    width: int = 4,
    scale: int | None = None,
    cost_params: CostParams | None = None,
    use_profile: bool = True,
    regalloc: bool = True,
    config: MachineConfig | None = None,
    balance_limit: float | None = None,
    interprocedural: bool = False,
    degrade: bool | None = None,
) -> BenchmarkResult:
    """Run the full pipeline for one benchmark configuration."""
    if config is None:
        if width == 4:
            config = four_way()
        elif width == 8:
            config = eight_way()
        else:
            raise ReproError(f"width must be 4 or 8, got {width}")
    where = f"{name}/{scheme}"
    report_progress(stage="prepare")
    artifacts = prepare_program(
        name,
        scheme,
        scale=scale,
        cost_params=cost_params,
        use_profile=use_profile,
        regalloc=regalloc,
        balance_limit=balance_limit,
        interprocedural=interprocedural,
        degrade=degrade,
    )
    fault_point("execute", where)
    report_progress(stage="execute")
    packed, key = _capture_or_replay(
        name,
        scheme,
        artifacts,
        scale=scale,
        cost_params=cost_params,
        use_profile=use_profile,
        regalloc=regalloc,
        balance_limit=balance_limit,
        interprocedural=interprocedural,
        where=where,
    )
    mix = packed.dynamic_mix()
    fault_point("simulate", where)
    report_progress(stage="simulate")
    # the checkpoint slot (REPRO_CKPT_CYCLES opt-in) is keyed by trace
    # key + machine config, so a retried cell resumes mid-simulation
    slot = slot_from_env(key, config, label=where)
    stats = TimingSimulator(config, checkpoint=slot).run(packed)
    offload = mix["fp_executed"] / mix["total"] if mix["total"] else 0.0
    return BenchmarkResult(
        name=name,
        scheme=scheme,
        machine=config.name,
        checksum=packed.value,
        dynamic_instructions=packed.n,
        offload_fraction=offload,
        cycles=stats.cycles,
        ipc=stats.ipc,
        stats=stats,
        partition_summary=dict(artifacts.partition_summary),
        static_instructions=artifacts.static_instructions,
        mix=mix,
        degraded=artifacts.degraded,
    )


def cached_run_benchmark(
    name: str, scheme: str = "advanced", width: int = 4, scale: int | None = None
) -> BenchmarkResult:
    """Cached :func:`run_benchmark` (default cost params / profile).

    The pipeline is deterministic, so experiments that share a
    configuration — e.g. Figure 8's offload fractions and Figure 9's
    cycle counts — reuse one run.  Delegates to the bench harness's
    in-process memo; set ``REPRO_BENCH_CACHE=<dir>`` to additionally
    replay results from the content-addressed on-disk cache across
    invocations (see :mod:`repro.bench`).
    """
    from repro.bench.cache import ResultCache
    from repro.bench.harness import run_cells
    from repro.bench.matrix import Cell

    cell = Cell(name, scheme, width, scale)
    [outcome] = run_cells([cell], cache=ResultCache.from_env())
    return outcome.unwrap()


def run_pair(
    name: str,
    scheme: str = "advanced",
    width: int = 4,
    scale: int | None = None,
    **kwargs,
) -> tuple[BenchmarkResult, BenchmarkResult, float]:
    """Run conventional + partitioned configurations; returns
    ``(baseline, partitioned, speedup)``."""
    baseline = run_benchmark(name, "conventional", width=width, scale=scale, **kwargs)
    partitioned = run_benchmark(name, scheme, width=width, scale=scale, **kwargs)
    return baseline, partitioned, partitioned.speedup_over(baseline)
