"""Figure 8 — Size of the FPa partition.

The paper's Figure 8 plots, for each SPECINT95 benchmark, the percentage
of total dynamic instructions offloaded to the FPa subsystem by the
basic and advanced partitioning schemes.  Paper result: 5–29 % (basic),
9–41 % (advanced), with the advanced scheme always at least matching the
basic scheme, roughly doubling it for go and compress, and leaving li
nearly unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import results_by_cell, run_cells
from repro.bench.matrix import Cell
from repro.workloads import INT_BENCHMARKS

#: The paper's approximate Figure 8 values (percent of dynamic
#: instructions offloaded), transcribed from the bar chart for
#: shape comparison in EXPERIMENTS.md.
PAPER_FIGURE8 = {
    "compress": {"basic": 14.0, "advanced": 27.0},
    "gcc": {"basic": 21.0, "advanced": 24.0},
    "go": {"basic": 9.0, "advanced": 19.0},
    "ijpeg": {"basic": 10.7, "advanced": 32.1},
    "li": {"basic": 13.0, "advanced": 13.0},
    "m88ksim": {"basic": 20.0, "advanced": 32.0},
    "perl": {"basic": 5.0, "advanced": 9.0},
}


@dataclass(frozen=True, slots=True)
class Figure8Row:
    benchmark: str
    basic_percent: float
    advanced_percent: float
    paper_basic: float
    paper_advanced: float


def run(
    benchmarks: list[str] | None = None,
    scale: int | None = None,
    *,
    jobs: int = 1,
    cache=None,
) -> list[Figure8Row]:
    """Regenerate Figure 8; returns one row per benchmark.

    ``jobs``/``cache`` fan the cells out over the bench harness
    (:func:`repro.bench.harness.run_cells`).
    """
    names = list(benchmarks or INT_BENCHMARKS)
    cells = [
        Cell(name, scheme, 4, scale)
        for name in names
        for scheme in ("basic", "advanced")
    ]
    results = results_by_cell(run_cells(cells, jobs=jobs, cache=cache))
    rows = []
    for name in names:
        basic = results[Cell(name, "basic", 4, scale)]
        advanced = results[Cell(name, "advanced", 4, scale)]
        paper = PAPER_FIGURE8.get(name, {"basic": float("nan"), "advanced": float("nan")})
        rows.append(
            Figure8Row(
                benchmark=name,
                basic_percent=100.0 * basic.offload_fraction,
                advanced_percent=100.0 * advanced.offload_fraction,
                paper_basic=paper["basic"],
                paper_advanced=paper["advanced"],
            )
        )
    return rows


def format_table(rows: list[Figure8Row]) -> str:
    """Render rows in the paper's series order (measured vs paper)."""
    lines = [
        "Figure 8: size of the FPa partition (% of dynamic instructions)",
        f"{'benchmark':10s} {'basic':>8s} {'advanced':>9s}   {'paper-b':>8s} {'paper-a':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:10s} {row.basic_percent:7.1f}% {row.advanced_percent:8.1f}%"
            f"   {row.paper_basic:7.1f}% {row.paper_advanced:7.1f}%"
        )
    return "\n".join(lines)
