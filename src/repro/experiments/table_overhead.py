"""§7.2 overheads of the advanced partitioning scheme.

The paper reports, in prose, that for all benchmarks the change in
static code size is negligible, instruction-cache hit rates barely move,
and the increase in dynamic instruction count is small — at most 4 %
(compress), of which 3.4 points are copies and 0.6 duplicates.  This
experiment regenerates those numbers per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import results_by_cell, run_cells
from repro.bench.matrix import Cell
from repro.workloads import INT_BENCHMARKS

#: The paper's §7.2 prose numbers for the worst benchmark (compress).
PAPER_MAX_DYNAMIC_INCREASE_PERCENT = 4.0


@dataclass(frozen=True, slots=True)
class OverheadRow:
    benchmark: str
    dynamic_increase_percent: float
    copy_percent: float  # dynamic copies as % of baseline instructions
    dup_percent: float  # dynamic duplicates as % of baseline instructions
    static_increase_percent: float
    icache_miss_rate_base: float
    icache_miss_rate_advanced: float
    static_copies: int
    static_dups: int


def run(
    benchmarks: list[str] | None = None,
    scale: int | None = None,
    *,
    jobs: int = 1,
    cache=None,
) -> list[OverheadRow]:
    """Measure the advanced scheme's overheads per benchmark."""
    names = list(benchmarks or INT_BENCHMARKS)
    cells = [
        Cell(name, scheme, 4, scale)
        for name in names
        for scheme in ("conventional", "advanced")
    ]
    results = results_by_cell(run_cells(cells, jobs=jobs, cache=cache))
    rows = []
    for name in names:
        baseline = results[Cell(name, "conventional", 4, scale)]
        advanced = results[Cell(name, "advanced", 4, scale)]
        base_dyn = baseline.dynamic_instructions
        extra = advanced.dynamic_instructions - base_dyn
        # frontend conversion copies exist in the baseline too; only the
        # partitioner-inserted ones are overhead
        copies_dyn = advanced.mix["copies"] - baseline.mix["copies"]
        # every trace "copy" is a cp_to/from_comp; duplicates are the
        # remaining extra instructions
        dups_dyn = max(0, extra - copies_dyn)
        rows.append(
            OverheadRow(
                benchmark=name,
                dynamic_increase_percent=100.0 * extra / base_dyn,
                copy_percent=100.0 * copies_dyn / base_dyn,
                dup_percent=100.0 * dups_dyn / base_dyn,
                static_increase_percent=100.0
                * (advanced.static_instructions - baseline.static_instructions)
                / baseline.static_instructions,
                icache_miss_rate_base=baseline.stats.icache_miss_rate,
                icache_miss_rate_advanced=advanced.stats.icache_miss_rate,
                static_copies=advanced.partition_summary.get("copies", 0),
                static_dups=advanced.partition_summary.get("dups", 0),
            )
        )
    return rows


def format_table(rows: list[OverheadRow]) -> str:
    lines = [
        "Section 7.2: overheads of the advanced partitioning scheme",
        f"{'benchmark':10s} {'dyn+':>7s} {'copies':>7s} {'dups':>6s} "
        f"{'static+':>8s} {'i$miss(base/adv)':>18s}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:10s} {row.dynamic_increase_percent:6.2f}% "
            f"{row.copy_percent:6.2f}% {row.dup_percent:5.2f}% "
            f"{row.static_increase_percent:7.2f}% "
            f"{100 * row.icache_miss_rate_base:8.3f}%/{100 * row.icache_miss_rate_advanced:.3f}%"
        )
    return "\n".join(lines)
