"""The injector: fault points, firing decisions, and fault actions.

Pipeline code calls :func:`fault_point` at stage boundaries and
:func:`corrupt_point` where data crosses a trust boundary (e.g. a disk
cache read).  Both are no-ops unless ``REPRO_FAULTS`` is set.

The active injector is built lazily from the environment and cached on
the spec text, so tests can flip ``REPRO_FAULTS`` with ``monkeypatch``
and get a fresh, deterministically seeded injector each time.  Firing
decisions (``p=``) come from one ``random.Random(seed)`` stream per
process; ``times=`` budgets are likewise per process.
"""

from __future__ import annotations

import os
import random
import time

from repro.errors import FaultInjected
from repro.faults.spec import FaultClause, FaultPlan, parse_spec, resolve_error_type

#: Environment variable holding the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status used by ``crash`` faults (distinctive in worker logs).
CRASH_EXIT_CODE = 13


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at fault points, statefully."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.fired: list[int] = [0] * len(plan.clauses)
        self.visits: list[int] = [0] * len(plan.clauses)

    def select(
        self, site: str, label: str = "", *, corrupt: bool = False
    ) -> FaultClause | None:
        """The first clause that fires at ``site`` for ``label``, if any.

        Consumes the clause's ``times`` budget and (for ``p < 1``) one
        RNG draw per eligible visit.  ``corrupt`` selects between data
        corruption clauses and the error/hang/crash kinds, so a clause
        never burns its budget at a point that would ignore it.
        ``after=`` counts eligible (site/kind/match-passing) visits per
        process and keeps the clause dormant for the first N of them,
        without drawing from the RNG.
        """
        for index, clause in enumerate(self.plan.clauses):
            if clause.site != site or (clause.kind == "corrupt") != corrupt:
                continue
            if clause.match is not None and clause.match not in label:
                continue
            if clause.times is not None and self.fired[index] >= clause.times:
                continue
            self.visits[index] += 1
            if self.visits[index] <= clause.after:
                continue
            if clause.probability < 1.0 and self.rng.random() >= clause.probability:
                continue
            self.fired[index] += 1
            return clause
        return None


#: (spec text, injector) — rebuilt whenever the env var's value changes.
_cached: tuple[str, FaultInjector] | None = None


def active_injector() -> FaultInjector | None:
    """The injector for the current ``REPRO_FAULTS`` value, or ``None``."""
    global _cached
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text or text == "0":
        _cached = None
        return None
    if _cached is None or _cached[0] != text:
        _cached = (text, FaultInjector(parse_spec(text)))
    return _cached[1]


def reset_faults() -> None:
    """Drop injector state (RNG stream, ``times`` budgets); tests."""
    global _cached
    _cached = None


def fault_point(site: str, label: str = "") -> None:
    """Execute any fault configured for ``site`` (error/hang/crash).

    ``corrupt`` clauses are ignored here — they only make sense where a
    value flows through :func:`corrupt_point`.
    """
    injector = active_injector()
    if injector is None:
        return
    clause = injector.select(site, label)
    if clause is None:
        return
    where = f"{site} ({label})" if label else site
    if clause.kind == "hang":
        time.sleep(clause.secs)
        return
    if clause.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    error_cls = resolve_error_type(clause.error_type)
    message = f"injected {clause.error_type} at {where}"
    if error_cls is FaultInjected:
        raise FaultInjected(message, site=site)
    raise error_cls(message)


def corrupt_point(site: str, entry, label: str = ""):
    """Return ``entry``, scrambled if a ``corrupt`` clause fires here.

    Corruption is shaped to the value crossing the trust boundary:

    * ``dict`` (a decoded cache entry) — the envelope is kept (so cheap
      integrity checks pass) but the payload is destroyed, modelling a
      torn entry that decodes as JSON yet holds no usable result;
    * ``bytes`` (a raw trace pack) — deterministic bit flips spread
      through the buffer, modelling on-disk rot that the decoder's
      checksum must catch.
    """
    injector = active_injector()
    if injector is None:
        return entry
    clause = injector.select(site, label, corrupt=True)
    if clause is None:
        return entry
    if isinstance(entry, (bytes, bytearray)):
        if not entry:
            return entry
        corrupted_bytes = bytearray(entry)
        step = max(1, len(corrupted_bytes) // 8)
        for index in range(0, len(corrupted_bytes), step):
            corrupted_bytes[index] ^= 0xFF
        return bytes(corrupted_bytes)
    corrupted = dict(entry)
    corrupted["result"] = {"__corrupted__": True}
    return corrupted
