"""The ``REPRO_FAULTS`` specification grammar.

A spec is a ``;``-separated list of clauses::

    spec    := clause (";" clause)*
    clause  := "seed=" INT
             | site ":" kind (":" key "=" value)*

``site`` names a pipeline-stage boundary (see :data:`FAULT_SITES`),
``kind`` selects what happens when the clause fires:

========  ==========================================================
kind      effect at the fault point
========  ==========================================================
error     raise an exception (``type=<ReproError subclass>``,
          default ``FaultInjected``)
hang      ``time.sleep(secs)`` (default 30) — exercises timeouts
crash     ``os._exit(13)`` — kills the worker process outright
corrupt   scramble the value flowing through a ``corrupt_point``
          (only honoured at data boundaries such as ``cache.get``
          and ``trace_pack``)
========  ==========================================================

Per-clause parameters:

``p=<float>``
    Firing probability per visit, drawn from the seeded RNG
    (default 1.0 — always fire).
``times=<int>``
    Maximum number of firings per process (default unlimited).  A
    clause with ``times=1`` models a *transient* failure: the first
    attempt fails, a retry succeeds.
``after=<int>``
    Skip the first N eligible visits before the clause may fire
    (default 0 — eligible immediately).  Composes with ``times``:
    ``ckpt_write:crash:after=1:times=1`` lets the first checkpoint
    publish and kills the worker on the second, which is how the chaos
    suite models a crash *after* resumable state exists.
``match=<substring>``
    Only fire when the fault point's label contains the substring.
    Pipeline fault points use ``<workload>/<scheme>`` labels (so
    ``match=m88ksim`` hits every scheme and ``match=m88ksim/advanced``
    just one); ``cache.get`` uses the cache key and ``trace_pack``
    the ``<workload>/<scheme>`` label of the trace being read.
``secs=<float>``
    Sleep duration for ``hang`` clauses.
``type=<name>``
    Exception class for ``error`` clauses; any subclass of
    :class:`~repro.errors.ReproError` by name, e.g.
    ``type=PartitionError``.

Example — crash every ``m88ksim`` worker, time out one ``compress``
simulation, and make the first disk-cache read corrupt::

    REPRO_FAULTS="seed=42;execute:crash:match=m88ksim;\
simulate:hang:secs=60:match=compress;cache.get:corrupt:times=1"
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Named pipeline-stage boundaries that host a fault point.
FAULT_SITES = (
    "compile",
    "profile",
    "partition",
    "regalloc",
    "execute",
    "simulate",
    "cache.get",
    "trace_pack",
    "ckpt_write",
    "ckpt_read",
    # ``repro serve`` request-lifecycle sites (labels are
    # ``<method> <path>`` for admit/respond, the cell label for work)
    "serve_admit",
    "serve_work",
    "serve_respond",
    "serve_drain",
)

#: What a firing clause does.
FAULT_KINDS = ("error", "hang", "crash", "corrupt")


@dataclass(frozen=True, slots=True)
class FaultClause:
    """One parsed ``site:kind[:key=value...]`` clause."""

    site: str
    kind: str
    probability: float = 1.0
    times: int | None = None
    after: int = 0
    match: str | None = None
    secs: float = 30.0
    error_type: str = "FaultInjected"

    def describe(self) -> str:
        parts = [f"{self.site}:{self.kind}"]
        if self.probability != 1.0:
            parts.append(f"p={self.probability:g}")
        if self.times is not None:
            parts.append(f"times={self.times}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.match:
            parts.append(f"match={self.match}")
        return ":".join(parts)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A full parsed spec: RNG seed plus ordered clauses."""

    seed: int
    clauses: tuple[FaultClause, ...]


def _parse_float(value: str, what: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ReproError(f"REPRO_FAULTS: {what} must be a number, got {value!r}")


def _parse_clause(text: str) -> FaultClause:
    fields = text.split(":")
    if len(fields) < 2:
        raise ReproError(
            f"REPRO_FAULTS: clause {text!r} must be 'site:kind[:key=value...]'"
        )
    site, kind = fields[0].strip(), fields[1].strip()
    if site not in FAULT_SITES:
        raise ReproError(
            f"REPRO_FAULTS: unknown site {site!r}; available: {FAULT_SITES}"
        )
    if kind not in FAULT_KINDS:
        raise ReproError(
            f"REPRO_FAULTS: unknown kind {kind!r}; available: {FAULT_KINDS}"
        )
    kwargs: dict = {}
    for param in fields[2:]:
        key, sep, value = param.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ReproError(
                f"REPRO_FAULTS: parameter {param!r} must be 'key=value'"
            )
        if key == "p":
            probability = _parse_float(value, "p")
            if not 0.0 <= probability <= 1.0:
                raise ReproError(f"REPRO_FAULTS: p must be in [0, 1], got {value}")
            kwargs["probability"] = probability
        elif key == "times":
            try:
                times = int(value)
            except ValueError:
                raise ReproError(f"REPRO_FAULTS: times must be an int, got {value!r}")
            if times < 1:
                raise ReproError(f"REPRO_FAULTS: times must be >= 1, got {times}")
            kwargs["times"] = times
        elif key == "after":
            try:
                after = int(value)
            except ValueError:
                raise ReproError(f"REPRO_FAULTS: after must be an int, got {value!r}")
            if after < 0:
                raise ReproError(f"REPRO_FAULTS: after must be >= 0, got {after}")
            kwargs["after"] = after
        elif key == "match":
            kwargs["match"] = value
        elif key == "secs":
            secs = _parse_float(value, "secs")
            if secs < 0:
                raise ReproError(f"REPRO_FAULTS: secs must be >= 0, got {value}")
            kwargs["secs"] = secs
        elif key == "type":
            kwargs["error_type"] = value
        else:
            raise ReproError(f"REPRO_FAULTS: unknown parameter {key!r} in {text!r}")
    if "error_type" in kwargs:
        resolve_error_type(kwargs["error_type"])  # fail fast on bad names
    return FaultClause(site, kind, **kwargs)


def parse_spec(text: str) -> FaultPlan:
    """Parse a full ``REPRO_FAULTS`` value; raises :class:`ReproError`."""
    seed = 0
    clauses: list[FaultClause] = []
    for raw in text.split(";"):
        part = raw.strip()
        if not part:
            continue
        if part.startswith("seed="):
            try:
                seed = int(part[len("seed="):])
            except ValueError:
                raise ReproError(f"REPRO_FAULTS: bad seed in {part!r}")
            continue
        clauses.append(_parse_clause(part))
    if not clauses:
        raise ReproError("REPRO_FAULTS: spec contains no fault clauses")
    return FaultPlan(seed=seed, clauses=tuple(clauses))


def resolve_error_type(name: str) -> type[ReproError]:
    """Look up a :class:`ReproError` subclass by name (``error`` clauses)."""
    from repro import errors

    cls = getattr(errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        raise ReproError(
            f"REPRO_FAULTS: type={name!r} is not a ReproError subclass"
        )
    return cls
