"""Seeded, deterministic fault injection for the experiment pipeline.

The benchmark pipeline is a long chain of deterministic stages; proving
that the harness survives a crashed worker, a hang, or a corrupted cache
entry requires *causing* those events on demand and reproducibly.  This
package injects faults at named pipeline-stage boundaries, driven by the
``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS="seed=7;execute:crash:match=m88ksim;simulate:hang:secs=60"

See :mod:`repro.faults.spec` for the grammar and
``docs/robustness.md`` for the failure model.  With ``REPRO_FAULTS``
unset, every fault point is a near-free no-op — production runs pay one
dict lookup per stage boundary.

Injection is *per process*: worker processes parse the spec themselves,
each with its own seeded RNG stream, so a given spec produces the same
faults run after run.
"""

from __future__ import annotations

from repro.faults.inject import (
    FaultInjector,
    active_injector,
    corrupt_point,
    fault_point,
    reset_faults,
)
from repro.faults.spec import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultClause,
    FaultPlan,
    parse_spec,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultClause",
    "FaultPlan",
    "FaultInjector",
    "active_injector",
    "corrupt_point",
    "fault_point",
    "parse_spec",
    "reset_faults",
]
