"""HTTP status mapping for the ``repro serve`` daemon.

The CLI maps every :class:`~repro.errors.ReproError` subclass to a
documented exit code; the daemon maps the same hierarchy onto HTTP
statuses so a request failure is inspectable without parsing message
text.  The two tables are kept side by side in ``docs/robustness.md``.

The rule of thumb:

* **4xx** — the *request* was at fault: unparseable JSON, an unknown
  route, a source file that does not compile, an unknown workload.
* **422** — the request was well-formed but the pipeline legitimately
  refused it (partition illegality, register-allocation failure,
  a guest-program runtime error).
* **429 / 503** — the *service* refused: admission control shed the
  request (429, with ``Retry-After``), the daemon is draining or the
  family's circuit breaker is open (503).
* **504** — the request's deadline expired (the progress-aware watchdog
  killed a stalled worker).
* **5xx** — the service itself failed (a worker crash the retries could
  not absorb, an injected fault, an unexpected exception).

Every error response body has the shape::

    {"error": {"type": "PartitionError", "stage": "partition",
               "message": "...", "exit_code": 14, "status": 422}}

so clients can recover the CLI-equivalent exit code from any failure.
"""

from __future__ import annotations

from repro.errors import EXIT_CODES, ReproError, error_stage

#: exit code -> HTTP status for pipeline errors flowing out of a request.
HTTP_STATUS_BY_EXIT: dict[int, int] = {
    10: 400,  # ParseError        — bad source in the request
    11: 400,  # SemanticError     — bad source in the request
    19: 400,  # WorkloadError     — unknown workload / bad scale
    12: 422,  # IRError           — pipeline refused the program
    13: 422,  # AnalysisError
    14: 422,  # PartitionError
    15: 422,  # RegAllocError
    16: 422,  # ExecutionError
    17: 422,  # FuelExhausted
    18: 500,  # SimulationError   — simulator invariant broke: our fault
    20: 500,  # FaultInjected     — deliberately broken service
    21: 500,  # TracePackError
    22: 500,  # CheckpointError
    23: 500,  # PerfDegradation   — never request-triggered
    24: 500,  # ServeError        — service misconfiguration
}

#: Harness failure types that are service conditions, not pipeline errors.
_HARNESS_STATUS = {
    "Timeout": 504,            # watchdog killed a stalled/over-budget cell
    "CircuitOpen": 503,        # family breaker open: fail fast, retry later
    "Aborted": 503,            # daemon drained before the cell resolved
    "BrokenProcessPool": 500,  # worker died and retries did not absorb it
}

#: Service-level statuses the daemon emits directly.
STATUS_SHED = 429
STATUS_DRAINING = 503
STATUS_DEADLINE = 504


def http_status_for_type(error_type: str) -> int:
    """HTTP status for a captured failure's exception-type name."""
    service = _HARNESS_STATUS.get(error_type)
    if service is not None:
        return service
    exit_code = EXIT_CODES.get(error_type)
    if exit_code is None:
        return 500
    return HTTP_STATUS_BY_EXIT.get(exit_code, 500)


def http_status_for(exc: BaseException) -> int:
    """HTTP status for a live exception escaping request handling."""
    if isinstance(exc, ReproError):
        return http_status_for_type(type(exc).__name__)
    return 500


def error_body(
    error_type: str,
    stage: str,
    message: str,
    *,
    status: int | None = None,
) -> tuple[int, dict]:
    """(status, JSON body) for a failure, with the CLI exit code echoed."""
    if status is None:
        status = http_status_for_type(error_type)
    return status, {
        "error": {
            "type": error_type,
            "stage": stage,
            "message": message,
            "exit_code": EXIT_CODES.get(error_type, 1),
            "status": status,
        }
    }


def error_body_for(exc: BaseException, *, status: int | None = None) -> tuple[int, dict]:
    """:func:`error_body` from a live exception."""
    return error_body(
        type(exc).__name__, error_stage(exc), str(exc), status=status
    )
