"""The HTTP front end: routing, admission control, error rendering.

One thread per connection (stdlib :class:`ThreadingHTTPServer`); the
interesting concurrency bounds live in :class:`~repro.serve.state.ServeState`,
not here.  The request lifecycle:

1. **Admission** — draining daemons answer 503 immediately; a full
   admission gate sheds with 429 + ``Retry-After`` *before* any body is
   parsed, so overload costs the server almost nothing per rejected
   request.
2. **Parse** — bounded body read, strict JSON; failures are 400 and do
   not count against the pipeline.
3. **Execute** — dispatch to :mod:`repro.serve.work`; pipeline errors
   map to statuses via :mod:`repro.serve.codes`.
4. **Respond** — always ``Connection: close`` with an explicit
   ``Content-Length``; the daemon never leaves a client parsing a
   half-written body.

``serve_admit`` and ``serve_respond`` are fault sites, so the chaos
suite can break the front end itself.  With ``--chaos``, a request may
also carry an ``X-Repro-Faults`` header scoped to that request alone —
only ``error`` and ``hang`` kinds are allowed there, because a ``crash``
inside a handler thread would take down the daemon for every client.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError
from repro.faults import fault_point
from repro.faults.inject import FaultInjector
from repro.faults.spec import parse_spec, resolve_error_type
from repro.serve.codes import (
    STATUS_DRAINING,
    STATUS_SHED,
    error_body,
    error_body_for,
)
from repro.serve.work import EXECUTORS, RequestProblem

#: Route prefix; unversioned paths 404 so the API can evolve.
API_PREFIX = "/v1/"

#: Header carrying a per-request fault spec (``--chaos`` daemons only).
CHAOS_HEADER = "X-Repro-Faults"


def request_faults(header_value: str) -> FaultInjector:
    """A request-scoped injector from an ``X-Repro-Faults`` header.

    ``crash`` and ``corrupt`` clauses are refused: a crash in a handler
    thread would kill the whole daemon (process-level crash testing
    belongs in ``REPRO_FAULTS`` on the daemon, where only pool workers
    die), and corruption only makes sense at the store read paths.
    """
    try:
        plan = parse_spec(header_value)
    except ReproError as exc:
        raise RequestProblem(f"bad {CHAOS_HEADER}: {exc}") from exc
    for clause in plan.clauses:
        if clause.kind not in ("error", "hang"):
            raise RequestProblem(
                f"bad {CHAOS_HEADER}: kind {clause.kind!r} is not allowed "
                "per-request (only error/hang)"
            )
    return FaultInjector(plan)


def fire_request_fault(
    injector: FaultInjector | None, site: str, label: str
) -> None:
    """Request-scoped analogue of :func:`repro.faults.fault_point`."""
    if injector is None:
        return
    clause = injector.select(site, label)
    if clause is None:
        return
    if clause.kind == "hang":
        time.sleep(clause.secs)
        return
    error_cls = resolve_error_type(clause.error_type)
    raise error_cls(f"injected {clause.error_type} at {site} ({label})")


class ServeHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection server carrying the shared ServeState."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, state) -> None:
        self.state = state
        super().__init__((state.config.host, state.config.port), RequestHandler)

    @property
    def bound_port(self) -> int:
        return self.server_address[1]


class RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServeHTTPServer

    # -- plumbing ---------------------------------------------------------

    @property
    def state(self):
        return self.server.state

    def log_message(self, format: str, *args) -> None:
        if not self.state.config.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, body: dict, extra_headers=()) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing useful to do

    def _read_body(self) -> dict:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "0")
        except ValueError:
            raise RequestProblem("bad Content-Length header")
        if length < 0:
            raise RequestProblem("bad Content-Length header")
        if length > self.state.config.max_body_bytes:
            raise RequestProblem(
                f"request body exceeds {self.state.config.max_body_bytes} bytes",
                status=413,
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestProblem(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise RequestProblem("request body must be a JSON object")
        return body

    # -- GET: observability ----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        state = self.state
        if self.path == "/healthz":
            # liveness: answers 200 for as long as the process serves at
            # all, including while draining — only death is unhealthy
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_s": round(state.uptime(), 3),
                    "draining": state.draining.is_set(),
                },
            )
        elif self.path == "/readyz":
            if state.draining.is_set():
                self._send_json(STATUS_DRAINING, {"status": "draining"})
            else:
                self._send_json(200, {"status": "ready"})
        elif self.path == "/stats":
            self._send_json(200, state.snapshot())
        else:
            self._send_json(
                *error_body("BadRequest", "serve", f"no such path {self.path!r}",
                            status=404)
            )

    # -- POST: work -------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        state = self.state
        started = time.monotonic()
        if not self.path.startswith(API_PREFIX):
            self._send_json(
                *error_body("BadRequest", "serve", f"no such path {self.path!r}",
                            status=404)
            )
            return
        endpoint = self.path[len(API_PREFIX):]
        executor = EXECUTORS.get(endpoint)
        if executor is None:
            self._send_json(
                *error_body(
                    "BadRequest", "serve",
                    f"unknown endpoint {endpoint!r}; "
                    f"available: {sorted(EXECUTORS)}",
                    status=404,
                )
            )
            return
        # ---- admission --------------------------------------------------
        if state.draining.is_set():
            state.counters.bump("rejected_draining")
            self._send_json(
                *error_body(
                    "Draining", "serve", "daemon is draining; retry elsewhere",
                    status=STATUS_DRAINING,
                )
            )
            return
        if not state.gate.try_enter():
            state.counters.bump("shed")
            retry_after = state.retry_after()
            status, body = error_body(
                "Overloaded", "serve",
                f"admission queue full ({state.gate.capacity} in flight); "
                f"retry in {retry_after}s",
                status=STATUS_SHED,
            )
            self._send_json(status, body, [("Retry-After", str(retry_after))])
            return
        state.counters.bump("accepted")
        try:
            status, body, extra = self._handle(endpoint, executor)
        finally:
            state.gate.leave()
        state.record_latency(endpoint, time.monotonic() - started)
        if status == 200:
            state.counters.bump("completed")
        else:
            state.counters.bump("failed")
            if status == 400:
                state.counters.bump("bad_requests")
        self._send_json(status, body, extra)

    def _handle(self, endpoint: str, executor) -> tuple[int, dict, list]:
        """Run one admitted request; never raises."""
        state = self.state
        label = f"POST {self.path}"
        chaos_injector = None
        try:
            fault_point("serve_admit", label)
            if state.config.chaos:
                header = self.headers.get(CHAOS_HEADER)
                if header:
                    chaos_injector = request_faults(header)
            fire_request_fault(chaos_injector, "serve_admit", label)
            params = self._read_body()
            status, body = executor(state, params)
            fault_point("serve_respond", label)
            fire_request_fault(chaos_injector, "serve_respond", label)
            return status, body, []
        except RequestProblem as problem:
            status, body = error_body(
                problem.error_type, problem.stage, str(problem),
                status=problem.status,
            )
            extra = []
            if status in (429, 503):
                extra.append(("Retry-After", str(state.retry_after())))
            return status, body, extra
        except ReproError as exc:
            return (*error_body_for(exc), [])
        except Exception as exc:  # noqa: BLE001 — the daemon must survive
            # anything a handler does; an unexpected bug is a 500 for
            # this client and a log line, never a dead service
            self.log_error("unhandled %s: %s", type(exc).__name__, exc)
            return (
                *error_body(
                    "Internal", "serve",
                    f"unhandled {type(exc).__name__}: {exc}", status=500,
                ),
                [],
            )
