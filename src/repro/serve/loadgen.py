"""``repro loadgen``: drive a daemon, measure it, emit ``BENCH_serve.json``.

Two arrival disciplines:

* **closed-loop** (default) — ``--clients N`` worker threads, each
  issuing its next request the moment the previous one answers.  Load
  is self-limiting; this measures best-case service latency under a
  fixed concurrency.
* **open-loop** — ``--rate R`` arrivals per second on a fixed schedule,
  regardless of how slowly the daemon answers.  This is the discipline
  that actually exercises admission control: when service time exceeds
  the arrival interval the queue fills and the daemon must shed.

The output document is a valid ``repro-bench/1`` BENCH file — the 200
responses of ``bench-cell`` requests *are* the cells block, failures
land in ``failures`` — plus a ``serve`` top-level block with the
service-level metrics (throughput, shed rate, per-endpoint latency
percentiles).  ``repro perf append`` therefore ingests it unchanged,
which is how the CI ``serve-smoke`` job feeds the per-branch perf
history.

``--fault-mix`` forwards a fault spec as the per-request
``X-Repro-Faults`` header (daemon must run ``--chaos``); each request
gets a distinct deterministic seed so a probabilistic mix does not fire
identically on every request.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError, ServeError
from repro.serve.client import ServeClient
from repro.serve.state import LatencyWindow

#: Default endpoint mix: mostly heavy requests with a sprinkle of the
#: inline endpoints, so one run exercises both execution paths.
DEFAULT_MIX = "bench-cell=4,simulate=2,compile=1,lint=1,partition=1"

KNOWN_ENDPOINTS = ("bench-cell", "simulate", "compile", "lint", "partition")


def parse_mix(text: str) -> list[tuple[str, int]]:
    """``"bench-cell=4,compile=1"`` -> weighted endpoint list."""
    weights: list[tuple[str, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition("=")
        name = name.strip()
        if name not in KNOWN_ENDPOINTS:
            raise ReproError(
                f"unknown endpoint {name!r} in mix; known: {KNOWN_ENDPOINTS}"
            )
        try:
            weight = int(weight_text) if weight_text else 1
        except ValueError:
            raise ReproError(f"bad weight in mix entry {part!r}")
        if weight < 0:
            raise ReproError(f"negative weight in mix entry {part!r}")
        if weight:
            weights.append((name, weight))
    if not weights:
        raise ReproError(f"mix {text!r} selects no endpoints")
    return weights


def build_plan(
    count: int,
    *,
    mix: str = DEFAULT_MIX,
    suite: str = "smoke",
    scale: int | None = None,
    deadline_s: float | None = None,
) -> list[tuple[str, dict]]:
    """``count`` (endpoint, payload) requests cycling cells and the mix.

    Deterministic: the same arguments always produce the same plan, so
    a loadgen run is reproducible and its cache-hit profile is stable.
    """
    from repro.bench.matrix import suite_cells

    weights = parse_mix(mix)
    schedule: list[str] = []
    for name, weight in weights:
        schedule.extend([name] * weight)
    cells = suite_cells(suite, scale)
    plan: list[tuple[str, dict]] = []
    for index in range(count):
        endpoint = schedule[index % len(schedule)]
        cell = cells[index % len(cells)]
        if endpoint in ("bench-cell", "simulate"):
            payload = cell.as_dict()
            if deadline_s is not None:
                payload["deadline_s"] = deadline_s
        else:
            # inline endpoints lint/compile/partition the same workload
            # sources the heavy endpoints simulate
            payload = {"workload": cell.workload, "scheme": cell.scheme}
            if cell.scale is not None:
                payload["scale"] = cell.scale
            if endpoint == "partition" and cell.scheme == "conventional":
                payload["scheme"] = "basic"
            if endpoint == "lint" and cell.scheme == "conventional":
                payload["scheme"] = "none"
        plan.append((endpoint, payload))
    return plan


def _fault_header(spec: str | None, index: int) -> str | None:
    """Re-seed the shared fault spec per request (deterministically)."""
    if not spec:
        return None
    parts = [p for p in spec.split(";") if p.strip()]
    kept = [p for p in parts if not p.strip().startswith("seed=")]
    base = 0
    for part in parts:
        part = part.strip()
        if part.startswith("seed="):
            try:
                base = int(part[len("seed="):])
            except ValueError:
                base = 0
    return ";".join([f"seed={base + index}"] + kept)


@dataclass
class RequestRecord:
    index: int
    endpoint: str
    status: int
    seconds: float
    error_type: str | None = None
    body: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclass
class LoadgenResult:
    records: list[RequestRecord]
    wall_seconds: float
    mode: str
    clients: int
    rate: float | None
    transport_errors: int = 0

    def shed(self) -> int:
        return sum(1 for r in self.records if r.status == 429)

    def summary(self) -> dict:
        total = len(self.records)
        ok = sum(1 for r in self.records if r.ok)
        shed = self.shed()
        by_endpoint: dict[str, LatencyWindow] = {}
        overall = LatencyWindow()
        status_counts: dict[str, int] = {}
        for record in self.records:
            status_counts[str(record.status)] = (
                status_counts.get(str(record.status), 0) + 1
            )
            overall.record(record.seconds)
            window = by_endpoint.setdefault(record.endpoint, LatencyWindow())
            window.record(record.seconds)
        return {
            "mode": self.mode,
            "clients": self.clients,
            "rate": self.rate,
            "requests": total,
            "ok": ok,
            "errors": total - ok - shed,
            "shed": shed,
            "shed_rate": shed / total if total else 0.0,
            "transport_errors": self.transport_errors,
            "wall_seconds": round(self.wall_seconds, 6),
            "requests_per_sec": (
                round(total / self.wall_seconds, 3) if self.wall_seconds > 0 else 0.0
            ),
            "status_counts": dict(sorted(status_counts.items())),
            "latency": overall.summary(),
            "endpoints": {
                name: window.summary()
                for name, window in sorted(by_endpoint.items())
            },
        }


def run_load(
    client: ServeClient,
    plan: list[tuple[str, dict]],
    *,
    clients: int = 4,
    rate: float | None = None,
    fault_mix: str | None = None,
    honor_retry_after: bool = False,
) -> LoadgenResult:
    """Execute ``plan`` against ``client``'s daemon; never raises for
    HTTP-level failures (they are data), only for a fully unreachable
    daemon on the very first request."""
    if fault_mix:
        from repro.faults.spec import parse_spec

        parse_spec(fault_mix)  # validate once, loudly, before any traffic
    records: list[RequestRecord] = [None] * len(plan)  # type: ignore[list-item]
    transport_errors = [0]
    lock = threading.Lock()

    def issue(index: int) -> None:
        endpoint, payload = plan[index]
        header = _fault_header(fault_mix, index)
        try:
            response = client.post(endpoint, payload, fault_header=header)
            if (
                honor_retry_after
                and response.status == 429
                and response.retry_after
            ):
                time.sleep(min(response.retry_after, 2.0))
            records[index] = RequestRecord(
                index=index,
                endpoint=endpoint,
                status=response.status,
                seconds=response.seconds,
                error_type=response.error_type,
                body=response.body,
            )
        except ServeError as exc:
            with lock:
                transport_errors[0] += 1
            records[index] = RequestRecord(
                index=index,
                endpoint=endpoint,
                status=0,
                seconds=0.0,
                error_type="Transport",
                body={"error": {"type": "Transport", "message": str(exc)}},
            )

    started = time.monotonic()
    if rate is None:
        # closed loop: a shared cursor, each client thread pulls the next
        cursor = [0]

        def worker() -> None:
            while True:
                with lock:
                    index = cursor[0]
                    if index >= len(plan):
                        return
                    cursor[0] += 1
                issue(index)

        threads = [
            threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
            for i in range(max(1, clients))
        ]
        mode = "closed"
    else:
        # open loop: arrivals on a fixed schedule, one thread per request
        if rate <= 0:
            raise ReproError(f"rate must be positive, got {rate}")
        interval = 1.0 / rate

        def fire_at(index: int) -> None:
            delay = started + index * interval - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            issue(index)

        threads = [
            threading.Thread(target=fire_at, args=(i,), daemon=True)
            for i in range(len(plan))
        ]
        mode = "open"
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    return LoadgenResult(
        records=[r for r in records if r is not None],
        wall_seconds=wall,
        mode=mode,
        clients=max(1, clients) if rate is None else len(plan),
        rate=rate,
        transport_errors=transport_errors[0],
    )


# ---------------------------------------------------------------------------
# BENCH document assembly
# ---------------------------------------------------------------------------


def build_serve_document(
    result: LoadgenResult, *, suite: str = "smoke", stats: dict | None = None
) -> dict:
    """A valid ``repro-bench/1`` document from a loadgen run.

    ``cells`` holds the distinct (by key) successful ``bench-cell``
    responses — each is byte-identical to what the serial CLI would
    have produced, which the chaos suite asserts.  ``failures`` holds
    failed cell outcomes (the daemon echoes the harness failure doc).
    Service-level metrics live under the extra ``serve`` key, which
    :func:`~repro.bench.results.validate_document` ignores and
    :func:`validate_serve_document` checks.
    """
    import time as _time

    from repro.bench.cache import code_fingerprint
    from repro.bench.results import BENCH_SCHEMA, host_info

    cells: list[dict] = []
    failures: list[dict] = []
    seen_keys: set[str] = set()
    for record in result.records:
        if record.endpoint != "bench-cell":
            continue
        doc = record.body
        if not isinstance(doc, dict) or "key" not in doc:
            continue  # shed/draining/transport responses carry no cell doc
        if doc.get("key") in seen_keys:
            continue
        if record.ok and doc.get("status") == "ok":
            seen_keys.add(doc["key"])
            cells.append(doc)
        elif doc.get("status") in ("failed", "timeout"):
            seen_keys.add(doc["key"])
            failures.append(doc)
    hits = sum(1 for c in cells if c.get("cached"))
    total_cells = len(cells) + len(failures)
    doc = {
        "schema": BENCH_SCHEMA,
        "suite": f"serve:{suite}",
        "created_unix": _time.time(),
        "code_version": code_fingerprint(),
        "host": host_info(),
        "jobs": result.clients,
        "total_seconds": result.wall_seconds,
        "cache": {
            "dir": None,
            "hits": hits,
            "misses": total_cells - hits,
            "hit_rate": hits / total_cells if total_cells else 0.0,
        },
        "cells": cells,
        "failures": failures,
        "serve": result.summary(),
    }
    if stats:
        # daemon-side /stats snapshot taken after the run: breaker
        # states, queue depth, daemon-side shed counts
        doc["serve"]["daemon"] = stats
        breakers = stats.get("breakers")
        if breakers:
            doc["breakers"] = breakers
    return doc


_SERVE_REQUIRED = (
    "mode",
    "requests",
    "ok",
    "errors",
    "shed",
    "shed_rate",
    "requests_per_sec",
    "latency",
    "endpoints",
)


def validate_serve_document(doc: dict) -> None:
    """BENCH validation plus the ``serve`` block contract."""
    from repro.bench.results import validate_document

    serve = doc.get("serve") if isinstance(doc, dict) else None
    problems: list[str] = []
    if not isinstance(serve, dict):
        raise ReproError("serve document missing the 'serve' block")
    for field_name in _SERVE_REQUIRED:
        if field_name not in serve:
            problems.append(f"serve block missing {field_name!r}")
    latency = serve.get("latency")
    if isinstance(latency, dict) and latency.get("count"):
        for pct in ("p50_ms", "p99_ms"):
            if pct not in latency:
                problems.append(f"serve.latency missing {pct!r}")
    if problems:
        raise ReproError(
            "invalid serve document: " + "; ".join(problems)
        )
    validate_document(doc)


def save_serve_document(doc: dict, path: str) -> None:
    from repro.ioutil import atomic_write_bytes

    atomic_write_bytes(
        path, (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")
    )
