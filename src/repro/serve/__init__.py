"""``repro serve``: the pipeline as a long-running, fault-isolated service.

A local HTTP/JSON daemon exposing compile / lint / partition / simulate
/ bench-cell, built entirely on the stdlib and on the robustness layers
the batch harness already proved out: process-isolated execution with
progress-aware watchdogs, capped retries, shared circuit breakers,
content-addressed result caching, and checkpoint/resume.  What the
daemon adds is the *service* failure envelope — bounded admission with
load shedding, request coalescing, graceful drain — documented in
``docs/robustness.md`` ("Service failure model").

Modules:

* :mod:`repro.serve.state`  — configuration, admission gate, counters
* :mod:`repro.serve.codes`  — error-hierarchy ↔ HTTP status mapping
* :mod:`repro.serve.work`   — request executors, single-flight dedup
* :mod:`repro.serve.http`   — routing, shedding, error rendering
* :mod:`repro.serve.daemon` — lifecycle: signals and graceful drain
* :mod:`repro.serve.client` — stdlib client used by loadgen and tests
* :mod:`repro.serve.loadgen` — load generator emitting BENCH_serve.json
"""

from repro.serve.state import ServeConfig, ServeState

__all__ = ["ServeConfig", "ServeState"]
