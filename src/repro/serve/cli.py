"""``repro serve`` and ``repro loadgen`` — the daemon and its driver.

Examples::

    repro serve --port 8173 --workers 4 --queue-depth 32
    repro serve --port 0 --port-file .serve-port   # ephemeral port
    REPRO_FAULTS='seed=7;execute:crash:p=0.2' repro serve --chaos

    repro loadgen --port 8173 --requests 60 --clients 8
    repro loadgen --port 8173 --rate 20 --requests 100 \
        --output BENCH_serve.json
    repro loadgen --port 8173 --fault-mix 'serve_work:error:p=0.1'

``loadgen`` exits 0 when the daemon stayed healthy (every request got
*an answer* — shed and pipeline failures are data, not driver
failures), and non-zero only when the daemon was unreachable or the
resulting document is invalid.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ServeError


def configure_serve_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8173,
        help="listen port; 0 picks an ephemeral port (default: 8173)",
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port here once listening (for --port 0)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=32, metavar="N",
        help="max in-flight requests before shedding with 429 (default: 32)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="concurrently executing heavy requests (default: 4)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECS",
        help="per-cell progress watchdog stall limit (default: 60)",
    )
    parser.add_argument(
        "--hard-timeout", type=float, default=300.0, metavar="SECS",
        help="per-cell absolute wall-clock ceiling (default: 300)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra attempts per failing cell (default: 1)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive failures opening a (workload, scheme) "
        "circuit breaker; 0 disables (default: 3)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECS",
        help="SIGTERM waits this long for in-flight work (default: 30)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-bench-cache", metavar="DIR",
        help="result cache directory (default: .repro-bench-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the on-disk result cache",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="honour per-request X-Repro-Faults headers (error/hang only)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-request log lines",
    )


def run_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ReproDaemon, write_port_file
    from repro.serve.state import ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        workers=args.workers,
        timeout=args.timeout,
        hard_timeout=args.hard_timeout,
        retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        drain_grace=args.drain_grace,
        cache_dir=None if args.no_cache else args.cache_dir,
        chaos=args.chaos,
        quiet=args.quiet,
    )
    try:
        daemon = ReproDaemon(config)
    except OSError as exc:
        raise ServeError(
            f"cannot bind {config.host}:{config.port}: {exc}"
        ) from exc
    if args.port_file:
        write_port_file(args.port_file, daemon.bound_port)
    return daemon.run_forever()


def configure_loadgen_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="daemon address")
    parser.add_argument(
        "--port", type=int, default=8173, help="daemon port (default: 8173)"
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="read the daemon port from this file (overrides --port)",
    )
    parser.add_argument(
        "--requests", "-n", type=int, default=30, metavar="N",
        help="total requests to issue (default: 30)",
    )
    parser.add_argument(
        "--clients", "-c", type=int, default=4, metavar="N",
        help="closed-loop concurrency (default: 4)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="open-loop arrivals per second (overrides closed-loop mode)",
    )
    parser.add_argument(
        "--mix", default=None, metavar="SPEC",
        help="endpoint weights, e.g. 'bench-cell=4,compile=1' "
        "(default: bench-cell=4,simulate=2,compile=1,lint=1,partition=1)",
    )
    parser.add_argument(
        "--suite", default="smoke",
        help="matrix suite the request plan cycles through (default: smoke)",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="force one workload scale on every cell",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECS",
        help="per-request deadline_s forwarded to the daemon",
    )
    parser.add_argument(
        "--fault-mix", default=None, metavar="SPEC",
        help="REPRO_FAULTS-grammar spec sent as X-Repro-Faults per "
        "request (daemon must run --chaos; error/hang kinds only)",
    )
    parser.add_argument(
        "--honor-retry-after", action="store_true",
        help="sleep per the Retry-After header after a 429",
    )
    parser.add_argument(
        "--output", "-o", default="BENCH_serve.json", metavar="PATH",
        help="BENCH document path; '-' = stdout only "
        "(default: BENCH_serve.json)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECS",
        help="client-side socket timeout per request (default: 120)",
    )
    parser.add_argument(
        "--wait-ready", type=float, default=10.0, metavar="SECS",
        help="poll /readyz this long before driving load (default: 10)",
    )


def run_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServeClient
    from repro.serve.loadgen import (
        DEFAULT_MIX,
        build_plan,
        build_serve_document,
        run_load,
        save_serve_document,
        validate_serve_document,
    )

    port = args.port
    if args.port_file:
        with open(args.port_file) as handle:
            port = int(handle.read().strip())
    client = ServeClient(args.host, port, timeout=args.timeout)
    if not client.wait_ready(args.wait_ready):
        raise ServeError(
            f"daemon at {args.host}:{port} not ready "
            f"within {args.wait_ready:.0f}s"
        )
    plan = build_plan(
        args.requests,
        mix=args.mix or DEFAULT_MIX,
        suite=args.suite,
        scale=args.scale,
        deadline_s=args.deadline,
    )
    result = run_load(
        client,
        plan,
        clients=args.clients,
        rate=args.rate,
        fault_mix=args.fault_mix,
        honor_retry_after=args.honor_retry_after,
    )
    try:
        stats = client.stats()
    except ServeError:
        stats = None  # daemon died mid-run; the document records the traffic
    doc = build_serve_document(result, suite=args.suite, stats=stats)
    validate_serve_document(doc)
    if args.output == "-":
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        save_serve_document(doc, args.output)
    summary = doc["serve"]
    latency = summary.get("latency", {})
    print(
        f"loadgen: {summary['requests']} requests "
        f"({summary['ok']} ok, {summary['errors']} errors, "
        f"{summary['shed']} shed) in {summary['wall_seconds']:.2f}s "
        f"= {summary['requests_per_sec']:.1f} req/s",
        file=sys.stderr,
    )
    if latency.get("count"):
        print(
            f"loadgen: latency p50 {latency['p50_ms']:.1f}ms "
            f"p99 {latency['p99_ms']:.1f}ms",
            file=sys.stderr,
        )
    if args.output != "-":
        print(f"loadgen: wrote {args.output}", file=sys.stderr)
    if result.transport_errors:
        # the daemon dropped connections: that is a service failure the
        # driver must surface even though every record was captured
        print(
            f"loadgen: {result.transport_errors} transport errors "
            "(daemon dropped connections)",
            file=sys.stderr,
        )
        return 1
    return 0
