"""Request executors: the bridge from HTTP requests to the pipeline.

Two classes of work, with very different failure envelopes:

* **Source-based** requests (``compile``, ``lint``, ``partition``) run
  inline in the handler thread.  They are CPU-light, deterministic and
  raise only :class:`~repro.errors.ReproError` subclasses, which the
  HTTP layer maps to 4xx via :mod:`repro.serve.codes`.

* **Workload-based** requests (``simulate``, ``bench-cell``) go through
  the fault-tolerant bench harness — :func:`~repro.bench.harness.run_cells`
  with a timeout, so execution always happens in a *worker process*.
  A crash fault (or a real interpreter bug) kills the worker, never the
  daemon; a hang trips the progress-aware watchdog; repeated failures
  trip the daemon-wide circuit breaker shared across all clients.
  ``run_cells`` never raises: the resulting
  :class:`~repro.bench.harness.CellOutcome` is translated to an HTTP
  status per failure type.

Concurrent identical requests are **coalesced** ("single flight"): the
first becomes the leader and computes, the rest wait on the leader's
outcome and share it.  Combined with the content-addressed
:class:`~repro.bench.cache.ResultCache`, a thundering herd of clients
asking for the same cell costs one interpretation.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.faults import fault_point

#: Follower slack (seconds) past the leader's hard deadline before a
#: coalesced waiter gives up on the shared outcome.
FOLLOWER_SLACK = 5.0


class RequestProblem(Exception):
    """A request the daemon refuses before running any pipeline stage.

    Carries the HTTP status directly; the handler renders it with
    :func:`repro.serve.codes.error_body`.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 400,
        error_type: str = "BadRequest",
        stage: str = "serve",
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.stage = stage


def _require_str(params: dict, name: str) -> str:
    value = params.get(name)
    if not isinstance(value, str) or not value:
        raise RequestProblem(f"field {name!r} must be a non-empty string")
    return value


def _optional_scale(params: dict):
    scale = params.get("scale")
    if scale is None:
        return None
    if not isinstance(scale, int) or isinstance(scale, bool) or scale <= 0:
        raise RequestProblem("field 'scale' must be a positive integer")
    return scale


def resolve_source(params: dict) -> str:
    """The MiniC source for a request: inline ``source`` or a named
    ``workload`` (with optional ``scale``), exactly like the CLI's
    ``workload:<name>`` spelling."""
    source = params.get("source")
    if source is not None:
        if not isinstance(source, str):
            raise RequestProblem("field 'source' must be a string")
        return source
    if params.get("workload") is not None:
        from repro.workloads import workload_source

        return workload_source(_require_str(params, "workload"), _optional_scale(params))
    raise RequestProblem("request needs either 'source' or 'workload'")


def _build_cell(params: dict):
    from repro.bench.matrix import Cell

    workload = _require_str(params, "workload")
    scheme = params.get("scheme", "advanced")
    width = params.get("width", 4)
    if not isinstance(width, int) or isinstance(width, bool):
        raise RequestProblem("field 'width' must be an integer")
    try:
        return Cell(workload, scheme, width, _optional_scale(params))
    except ReproError as exc:
        # Cell validates with the base error class (CLI exit 1); at the
        # service boundary an unknown workload/scheme/width is the
        # client's fault, not the server's.
        raise RequestProblem(str(exc)) from exc


# ---------------------------------------------------------------------------
# Source-based executors (inline, handler thread)
# ---------------------------------------------------------------------------


def do_compile(state, params: dict) -> tuple[int, dict]:
    from repro.analysis.warnings import AnalysisWarning
    from repro.ir.printer import print_program
    from repro.minic.compile import compile_source

    warnings: list[AnalysisWarning] = []
    program = compile_source(
        resolve_source(params),
        optimize=bool(params.get("optimize", True)),
        warnings=warnings,
    )
    return 200, {
        "ir": print_program(program),
        "warnings": [w.render() for w in warnings],
        "functions": sorted(program.functions),
    }


def _lint_result(params: dict):
    from repro.lint import lint_program, partition_rule_ids
    from repro.minic.compile import compile_source

    program = compile_source(resolve_source(params), optimize=True)
    scheme = params.get("scheme", "advanced")
    if scheme not in ("none", "basic", "advanced"):
        raise RequestProblem(f"unknown lint scheme {scheme!r}")
    rules = params.get("rules")
    if rules is not None and (
        not isinstance(rules, list) or not all(isinstance(r, str) for r in rules)
    ):
        raise RequestProblem("field 'rules' must be a list of rule ids")
    if scheme == "none":
        return lint_program(program, rules=rules)
    from repro.ir.verify import verify_program
    from repro.partition.advanced import advanced_partition
    from repro.partition.basic import basic_partition
    from repro.partition.rewrite import apply_partition

    partitions = {}
    for name, func in program.functions.items():
        if scheme == "basic":
            partitions[name] = basic_partition(func)
        else:
            partitions[name] = advanced_partition(func)
    partition_only = partition_rule_ids()
    pre_rules = (
        [r for r in rules if r in partition_only] if rules is not None else partition_only
    )
    result = lint_program(
        program, partitions=partitions, scheme=scheme, rules=pre_rules
    )
    for name, func in program.functions.items():
        apply_partition(func, partitions[name])
    verify_program(program)
    post_rules = (
        [r for r in rules if r not in partition_only] if rules is not None else None
    )
    result.extend(lint_program(program, scheme=scheme, rules=post_rules))
    result.finalize()
    return result


def do_lint(state, params: dict) -> tuple[int, dict]:
    from repro.lint import render_json

    result = _lint_result(params)
    # diagnostics are the *product* of a lint request, not a failure:
    # the request itself succeeded even when the program did not
    return 200, json.loads(render_json(result))


def do_partition(state, params: dict) -> tuple[int, dict]:
    from repro.minic.compile import compile_source
    from repro.partition.advanced import advanced_partition
    from repro.partition.basic import basic_partition
    from repro.partition.partition import partition_stats
    from repro.partition.report import offload_by_opcode

    program = compile_source(resolve_source(params), optimize=True)
    scheme = params.get("scheme", "advanced")
    if scheme not in ("basic", "advanced"):
        raise RequestProblem(f"unknown partition scheme {scheme!r}")
    functions = {}
    for name, func in program.functions.items():
        if scheme == "basic":
            partition = basic_partition(func)
        else:
            partition = advanced_partition(func)
        doc = dict(partition_stats(partition))
        doc["opcodes"] = {op: n for op, n in sorted(offload_by_opcode(partition).items())}
        functions[name] = doc
    return 200, {"scheme": scheme, "functions": functions}


# ---------------------------------------------------------------------------
# Workload-based executors (process pool via run_cells)
# ---------------------------------------------------------------------------


@dataclass
class _Flight:
    """One in-progress cell computation other requests can latch onto."""

    done: threading.Event = field(default_factory=threading.Event)
    outcome: object | None = None


def _deadline(state, params: dict) -> tuple[float, float]:
    """(soft, hard) per-cell limits honouring the request deadline."""
    config = state.config
    deadline_s = params.get("deadline_s")
    if deadline_s is None:
        return config.timeout, config.hard_timeout
    if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool):
        raise RequestProblem("field 'deadline_s' must be a number")
    if not 0 < deadline_s <= config.hard_timeout:
        raise RequestProblem(
            f"field 'deadline_s' must be in (0, {config.hard_timeout}]"
        )
    return min(config.timeout, float(deadline_s)), float(deadline_s)


def run_cell(state, cell, *, force: bool = False, soft: float, hard: float):
    """Run one cell under full supervision; returns a CellOutcome.

    Never raises for pipeline failures — crash, hang, timeout and error
    all come back as a failed outcome.  The daemon-wide circuit breaker
    is threaded through, so consecutive failures of one
    (workload, scheme) family open its breaker for *every* client.
    """
    from repro.bench.cache import cell_key
    from repro.bench.harness import run_cells

    fault_point("serve_work", cell.label)
    key = cell_key(cell)
    flight: _Flight | None = None
    leader = True
    if not force:
        # ``force`` requests must recompute, so they never piggyback on
        # (or lead) a shared flight
        with state.flights_lock:
            flight = state.flights.get(key)
            if flight is None:
                flight = _Flight()
                state.flights[key] = flight
            else:
                leader = False
    if flight is not None and not leader:
        state.counters.bump("coalesced")
        if not flight.done.wait(hard + FOLLOWER_SLACK):
            raise RequestProblem(
                f"coalesced wait for {cell.label} exceeded {hard:.0f}s",
                status=504,
                error_type="Timeout",
            )
        if flight.outcome is None:
            raise RequestProblem(
                f"shared computation for {cell.label} was aborted",
                status=503,
                error_type="Aborted",
                stage="serve",
            )
        return flight.outcome
    try:
        # bound *executing* requests separately from admitted ones: the
        # queue may hold queue_depth requests but only ``workers`` cells
        # interpret at once
        if not state.exec_slots.acquire(timeout=hard):
            raise RequestProblem(
                f"no execution slot for {cell.label} within {hard:.0f}s",
                status=503,
                error_type="Aborted",
            )
        try:
            outcomes = run_cells(
                [cell],
                jobs=1,
                cache=state.cache,
                force=force,
                # a non-None timeout forces pool isolation even for one
                # serial cell — crash faults must kill a worker process,
                # never the daemon (see ServeConfig.timeout)
                timeout=soft,
                hard_timeout=hard,
                retries=state.config.retries,
                backoff=state.config.backoff,
                breaker=state.breaker,
                stop=state.stop,
            )
        finally:
            state.exec_slots.release()
        outcome = outcomes[0]
        if flight is not None:
            flight.outcome = outcome
        return outcome
    finally:
        if flight is not None:
            with state.flights_lock:
                state.flights.pop(key, None)
            flight.done.set()


def outcome_response(state, outcome) -> tuple[int, dict]:
    """Map a CellOutcome to (HTTP status, JSON body).

    The success body is exactly the BENCH ``cells`` entry layout, so a
    client can splice daemon responses into a ``repro-bench/1`` document
    (``repro loadgen`` does precisely that).
    """
    from repro.bench.results import outcome_cell_doc
    from repro.serve.codes import http_status_for_type

    doc = outcome_cell_doc(outcome)
    if outcome.ok:
        return 200, doc
    error_type = doc.get("error", {}).get("type", "Unknown")
    if outcome.status == "timeout" or error_type == "Timeout":
        state.counters.bump("timeouts")
    return http_status_for_type(error_type), doc


def do_bench_cell(state, params: dict) -> tuple[int, dict]:
    cell = _build_cell(params)
    soft, hard = _deadline(state, params)
    outcome = run_cell(
        state, cell, force=bool(params.get("force", False)), soft=soft, hard=hard
    )
    return outcome_response(state, outcome)


def do_simulate(state, params: dict) -> tuple[int, dict]:
    """bench-cell with a trimmed, human-oriented response body."""
    cell = _build_cell(params)
    soft, hard = _deadline(state, params)
    outcome = run_cell(state, cell, soft=soft, hard=hard)
    status, doc = outcome_response(state, outcome)
    if status != 200:
        return status, doc
    result = doc.get("result", {})
    return 200, {
        "workload": cell.workload,
        "scheme": cell.scheme,
        "width": cell.width,
        "scale": cell.scale,
        "cached": doc.get("cached", False),
        "checksum": result.get("checksum"),
        "cycles": result.get("cycles"),
        "ipc": result.get("ipc"),
        "offload_fraction": result.get("offload_fraction"),
        "degraded": result.get("degraded", False),
    }


#: Endpoint table the HTTP layer dispatches from.
EXECUTORS = {
    "compile": do_compile,
    "lint": do_lint,
    "partition": do_partition,
    "simulate": do_simulate,
    "bench-cell": do_bench_cell,
}
