"""Daemon lifecycle: startup, signal handling, graceful drain.

The shutdown contract (see ``docs/robustness.md``):

1. SIGTERM/SIGINT sets the **draining** flag — ``/readyz`` flips to
   503 and new work is refused, while ``/healthz`` stays green (the
   process is still alive and finishing work).
2. In-flight requests get up to ``drain_grace`` seconds to complete.
   Long simulations keep publishing checkpoints on their usual cadence,
   so even work that does not finish resumes cheaply after a restart.
3. When the gate is idle (or the grace expired) the **stop** event is
   set — any still-running ``run_cells`` call aborts promptly, its
   requests answer 503 — and the listener shuts down.
4. The process exits 0.  A drain is an *orderly* ending; only an
   internal error exits non-zero.

``serve_drain`` is a fault site so the chaos suite can break the drain
path itself and assert the grace ceiling still holds.
"""

from __future__ import annotations

import contextlib
import signal
import sys
import threading

from repro.faults import fault_point
from repro.serve.http import ServeHTTPServer
from repro.serve.state import ServeConfig, ServeState


class ReproDaemon:
    """One serving process: an HTTP server plus its shared state."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.state = ServeState(config)
        self.server = ServeHTTPServer(self.state)
        self._serve_thread: threading.Thread | None = None
        self._drain_thread: threading.Thread | None = None
        self._drain_lock = threading.Lock()
        self._drain_started = False
        self._finished = threading.Event()

    @property
    def bound_port(self) -> int:
        """The actual listening port (useful with ``port=0``)."""
        return self.server.bound_port

    # -- embedded use (tests, loadgen self-hosting) -----------------------

    def start(self) -> None:
        """Serve on a background thread; returns once listening."""
        self._serve_thread = threading.Thread(
            target=self._serve, name="repro-serve", daemon=True
        )
        self._serve_thread.start()

    def _serve(self) -> None:
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.server.server_close()
            self._finished.set()

    def drain(self, grace: float | None = None) -> bool:
        """Stop accepting, wait for in-flight work, shut the server down.

        Returns True when every in-flight request finished inside the
        grace period, False when the stop event had to abort stragglers.
        Idempotent: repeat calls join the same drain.
        """
        grace = self.config.drain_grace if grace is None else grace
        with self._drain_lock:
            leader = not self._drain_started
            self._drain_started = True
        if not leader:
            # join the in-progress drain, bounded so a wedged drain can
            # never wedge its observers too
            self._finished.wait(grace + 15.0)
            return not self.state.stop.is_set()
        self.state.draining.set()
        with contextlib.suppress(Exception):
            fault_point("serve_drain", "drain")
        clean = self.state.gate.wait_idle(grace)
        if not clean:
            # grace expired: abort in-flight run_cells promptly; their
            # requests answer 503 Aborted rather than hanging forever
            self.state.stop.set()
            self.state.gate.wait_idle(5.0)
        self.server.shutdown()
        self._finished.wait()
        return clean

    def stop(self) -> None:
        """Hard stop without grace (tests)."""
        self.drain(grace=0.0)

    # -- foreground use (the ``repro serve`` CLI) -------------------------

    def run_forever(self) -> int:
        """Serve until SIGTERM/SIGINT, then drain; returns the exit code."""
        drained: dict[str, bool] = {}

        def _on_signal(signum, frame) -> None:
            # never drain on the signal-handler frame: it may have
            # interrupted a thread holding an arbitrary lock
            if self._drain_thread is None:
                name = signal.Signals(signum).name
                print(f"repro serve: {name} received, draining "
                      f"(grace {self.config.drain_grace:.0f}s)", file=sys.stderr)
                self._drain_thread = threading.Thread(
                    target=lambda: drained.__setitem__("clean", self.drain()),
                    name="repro-serve-drain",
                    daemon=True,
                )
                self._drain_thread.start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        self.start()
        if not self.config.quiet:
            print(
                f"repro serve: listening on "
                f"http://{self.config.host}:{self.bound_port} "
                f"(queue {self.config.queue_depth}, "
                f"workers {self.config.workers})",
                file=sys.stderr,
            )
        self._finished.wait()
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=self.config.drain_grace + 10.0)
        aborted = self.state.stop.is_set()
        if not self.config.quiet:
            how = "aborted stragglers" if aborted else "clean"
            print(f"repro serve: drained ({how}), exiting", file=sys.stderr)
        # a drain that had to abort work is still an orderly shutdown
        return 0


def write_port_file(path: str, port: int) -> None:
    """Publish the bound port for scripts that started us with port 0."""
    from repro.ioutil import atomic_write_bytes

    atomic_write_bytes(path, f"{port}\n".encode("ascii"), fsync=False)
