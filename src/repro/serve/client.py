"""A small stdlib client for the daemon (loadgen, CI scripts, tests).

One connection per request (the daemon answers ``Connection: close``),
no retries of its own — retry/backoff policy belongs to the caller,
which knows whether a 429's ``Retry-After`` is worth honouring.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass

from repro.errors import ServeError


@dataclass
class ServeResponse:
    """Status + decoded body of one request, plus client-side timing."""

    status: int
    body: dict
    seconds: float
    retry_after: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def error_type(self) -> str | None:
        error = self.body.get("error")
        return error.get("type") if isinstance(error, dict) else None


class ServeClient:
    """Talk to one daemon at ``host:port``."""

    def __init__(self, host: str, port: int, *, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> ServeResponse:
        """One round trip; raises :class:`ServeError` only on transport
        failure (connection refused, socket timeout) — HTTP-level errors
        come back as a :class:`ServeResponse` for the caller to judge."""
        started = time.monotonic()
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            send_headers = dict(headers or {})
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"{method} {path} to {self.host}:{self.port} failed: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"{method} {path}: undecodable response body ({exc})"
            ) from exc
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return ServeResponse(
            status=status,
            body=decoded,
            seconds=time.monotonic() - started,
            retry_after=float(retry_after) if retry_after else None,
        )

    def get(self, path: str) -> ServeResponse:
        return self.request("GET", path)

    def post(
        self, endpoint: str, payload: dict, *, fault_header: str | None = None
    ) -> ServeResponse:
        headers = {"X-Repro-Faults": fault_header} if fault_header else None
        return self.request("POST", f"/v1/{endpoint}", payload, headers)

    def healthz(self) -> ServeResponse:
        return self.get("/healthz")

    def stats(self) -> dict:
        return self.get("/stats").body

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll ``/readyz`` until 200 or the timeout elapses."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.get("/readyz").status == 200:
                    return True
            except ServeError:
                pass
            time.sleep(interval)
        return False


def probe_port(host: str, port: int, timeout: float = 0.25) -> bool:
    """True when something is listening (cheap TCP connect probe)."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
