"""Shared daemon state: configuration, admission control, counters.

One :class:`ServeState` lives for the whole daemon process and is
shared by every request-handler thread.  It owns the process-wide
warm resources — the :class:`~repro.bench.cache.ResultCache`, the
in-process trace pool, the cross-client circuit breaker — plus the
admission gate and the observability counters the ``/stats`` endpoint
reports.  Everything here is thread-safe; the request handlers hold no
state of their own.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.bench.harness import CircuitBreaker


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Daemon configuration (CLI flags map 1:1 onto these fields)."""

    host: str = "127.0.0.1"
    port: int = 8173
    #: Total in-flight bound (queued + executing); past it, requests are
    #: shed with 429 + ``Retry-After``.
    queue_depth: int = 32
    #: Concurrently *executing* heavy requests; the rest of the queue
    #: waits for a slot (bounded by the request deadline).
    workers: int = 4
    #: Per-cell soft stall limit (seconds) for the progress-aware
    #: watchdog; always set, so workload execution is always
    #: process-isolated (a crash fault kills a worker, not the daemon).
    timeout: float = 60.0
    #: Absolute per-cell wall-clock ceiling (seconds).
    hard_timeout: float = 300.0
    #: Extra attempts per failing cell.
    retries: int = 1
    #: Base of the retry backoff (seconds).
    backoff: float = 0.1
    #: Per-(workload, scheme) consecutive-failure threshold for the
    #: shared circuit breaker; 0 disables.
    breaker_threshold: int = 3
    #: Seconds SIGTERM waits for in-flight work before aborting it.
    drain_grace: float = 30.0
    #: Result-cache directory; ``None`` disables the disk cache.
    cache_dir: str | None = ".repro-bench-cache"
    #: Honour per-request ``X-Repro-Faults`` chaos headers.
    chaos: bool = False
    #: Suppress per-request log lines.
    quiet: bool = False
    #: Cap on accepted request bodies, bytes.
    max_body_bytes: int = 1 << 20


class AdmissionGate:
    """Bounded admission: at most ``capacity`` requests in flight.

    ``try_enter`` never blocks — a full service answers *now* with 429
    rather than stacking connections until something falls over.  The
    drain path waits on the internal condition for in-flight work to
    finish.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self._in_flight = 0
        self._cond = threading.Condition()

    def try_enter(self) -> bool:
        with self._cond:
            if self._in_flight >= self.capacity:
                return False
            self._in_flight += 1
            return True

    def leave(self) -> None:
        with self._cond:
            self._in_flight = max(0, self._in_flight - 1)
            self._cond.notify_all()

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    def wait_idle(self, timeout: float) -> bool:
        """Block until nothing is in flight; False when time ran out."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True


class LatencyWindow:
    """Bounded reservoir of recent request latencies (seconds).

    Percentiles over a sliding window of the newest ``cap`` samples —
    enough for /stats to be honest about the recent past without
    unbounded memory over a long-lived daemon.
    """

    def __init__(self, cap: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=cap)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total += seconds

    def percentile(self, fraction: float) -> float | None:
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        with self._lock:
            samples = list(self._samples)
            count, total = self.count, self.total
        if not samples:
            return {"count": 0}
        ordered = sorted(samples)

        def pct(fraction: float) -> float:
            return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

        return {
            "count": count,
            "mean_ms": round(1000.0 * total / count, 3),
            "p50_ms": round(1000.0 * pct(0.50), 3),
            "p90_ms": round(1000.0 * pct(0.90), 3),
            "p99_ms": round(1000.0 * pct(0.99), 3),
            "max_ms": round(1000.0 * max(ordered), 3),
        }


class Counters:
    """Monotonic service counters, lock-guarded."""

    FIELDS = (
        "accepted",
        "completed",
        "failed",
        "shed",
        "rejected_draining",
        "coalesced",
        "timeouts",
        "bad_requests",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values = {name: 0 for name in self.FIELDS}

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + by

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._values)


@dataclass(eq=False)
class ServeState:
    """Everything the handler threads share; built once per daemon."""

    config: ServeConfig
    gate: AdmissionGate = field(init=False)
    breaker: CircuitBreaker = field(init=False)
    counters: Counters = field(init=False)
    #: Set when SIGTERM arrived: readyz flips, new work is refused.
    draining: threading.Event = field(init=False)
    #: Set when the drain grace expired: in-flight ``run_cells`` calls
    #: abort promptly instead of finishing.
    stop: threading.Event = field(init=False)

    def __post_init__(self) -> None:
        self.gate = AdmissionGate(self.config.queue_depth)
        self.exec_slots = threading.Semaphore(max(1, self.config.workers))
        self.breaker = CircuitBreaker(self.config.breaker_threshold)
        self.counters = Counters()
        self.draining = threading.Event()
        self.stop = threading.Event()
        self.started_unix = time.time()
        self.started_monotonic = time.monotonic()
        self.latency_overall = LatencyWindow()
        self.latency_by_endpoint: dict[str, LatencyWindow] = {}
        self._latency_lock = threading.Lock()
        # single-flight table: cell key -> in-progress computation
        self.flights: dict[str, object] = {}
        self.flights_lock = threading.Lock()
        if self.config.cache_dir:
            from repro.bench.cache import shared_result_cache

            self.cache = shared_result_cache(self.config.cache_dir)
        else:
            self.cache = None

    def record_latency(self, endpoint: str, seconds: float) -> None:
        self.latency_overall.record(seconds)
        with self._latency_lock:
            window = self.latency_by_endpoint.get(endpoint)
            if window is None:
                window = self.latency_by_endpoint[endpoint] = LatencyWindow()
        window.record(seconds)

    def retry_after(self) -> int:
        """Advisory ``Retry-After`` seconds for a shed request.

        Scales with load: an almost-drained queue suggests a quick
        retry, a deep one a longer pause.  Clients treat it as a hint.
        """
        depth = self.gate.in_flight
        return max(1, min(30, depth // max(1, self.config.workers)))

    def uptime(self) -> float:
        return time.monotonic() - self.started_monotonic

    def snapshot(self) -> dict:
        """The ``/stats`` document."""
        from repro.trace.store import shared_trace_store, trace_pool

        trace_store = shared_trace_store()
        with self._latency_lock:
            endpoints = {
                name: window.summary()
                for name, window in sorted(self.latency_by_endpoint.items())
            }
        return {
            "pid": os.getpid(),
            "uptime_s": round(self.uptime(), 3),
            "started_unix": self.started_unix,
            "draining": self.draining.is_set(),
            "queue": {
                "capacity": self.gate.capacity,
                "in_flight": self.gate.in_flight,
                "workers": self.config.workers,
            },
            "counters": self.counters.snapshot(),
            "latency": self.latency_overall.summary(),
            "endpoints": endpoints,
            "breakers": self.breaker.snapshot(),
            "caches": {
                "result": None if self.cache is None else self.cache.stats(),
                "trace_pool": trace_pool().stats(),
                "trace_store": None if trace_store is None else trace_store.stats(),
            },
            "config": {
                "queue_depth": self.config.queue_depth,
                "workers": self.config.workers,
                "timeout": self.config.timeout,
                "hard_timeout": self.config.hard_timeout,
                "retries": self.config.retries,
                "breaker_threshold": self.config.breaker_threshold,
                "drain_grace": self.config.drain_grace,
                "chaos": self.config.chaos,
            },
        }
