"""Command-line interface.

Usage::

    python -m repro compile prog.mc            # print optimized IR
    python -m repro run prog.mc                # execute, print the result
    python -m repro partition prog.mc          # annotated partition + stats
    python -m repro lint prog.mc               # static checks on partitioned IR
    python -m repro analyze prog.mc            # abstract-interpretation warnings
    python -m repro analyze --compare-profile  # static vs measured profiles
    python -m repro simulate prog.mc           # conventional vs partitioned
    python -m repro report [fig8 fig9 ...]     # regenerate paper artifacts
    python -m repro bench --suite fig8 -j 4    # benchmark matrix -> BENCH JSON
    python -m repro perf append BENCH_fig8.json  # record run in perf history
    python -m repro perf check                 # statistical degradation gate
    python -m repro serve --port 8173          # pipeline as a local daemon
    python -m repro loadgen --port 8173 -n 60  # drive it -> BENCH_serve.json
    python -m repro fuzz --seeds 200           # differential partition fuzzing
    python -m repro fuzz --replay              # replay the regression corpus

``prog.mc`` is a MiniC source file (see ``examples/`` and the README for
the language).  ``-`` reads from stdin, and ``workload:<name>`` uses the
generated source of a registered benchmark workload (e.g.
``workload:compress``) so CI can lint exactly what the harness runs.
Generator specs (``gen:mixer?seed=7&ldst=0.3`` — see ``docs/fuzzing.md``)
are accepted anywhere a workload name is.

Exit codes are documented per error class — 0 success, 1 generic
failure, 2 usage, 3 unreadable input file, 4 the bench failure gate,
10-25 the :mod:`repro.errors` hierarchy, including 23 for a confirmed
performance degradation from ``perf check`` and 25 for a differential
fuzzing violation (see ``docs/robustness.md``, which also documents how
``repro serve`` maps the same hierarchy onto HTTP statuses).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import EXIT_IO, ReproError, exit_code_for


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    if path.startswith("workload:") or path.startswith("gen:"):
        from repro.workloads import workload_source

        if path.startswith("workload:"):
            path = path[len("workload:"):]
        return workload_source(path)
    with open(path) as handle:
        return handle.read()


def _compile(args: argparse.Namespace):
    from repro.minic.compile import compile_source

    return compile_source(_read_source(args.file), optimize=not args.no_opt)


def _profile_for(program, mode: str):
    """Resolve a ``--profile`` choice to an ExecutionProfile (or None for
    the paper's probabilistic estimate)."""
    if mode == "measured":
        from repro.runtime.interp import run_program

        return run_program(program).profile
    if mode == "static":
        from repro.analysis.freq import static_profile

        return static_profile(program)
    return None  # "estimate": p_B * 5^d fallback inside the cost model


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.analysis.warnings import AnalysisWarning
    from repro.ir.printer import print_program
    from repro.minic.compile import compile_source

    warnings: list[AnalysisWarning] = []
    program = compile_source(
        _read_source(args.file), optimize=not args.no_opt, warnings=warnings
    )
    for warning in warnings:
        print(warning.render(), file=sys.stderr)
    print(print_program(program), end="")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.runtime.interp import run_program

    result = run_program(_compile(args), fuel=args.fuel)
    print(f"result: {result.value}")
    print(f"dynamic instructions: {result.instructions}")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    from repro.partition.advanced import advanced_partition
    from repro.partition.basic import basic_partition
    from repro.partition.interproc import decide_fp_arguments
    from repro.partition.partition import partition_stats
    from repro.partition.report import annotate_partition, offload_by_opcode

    program = _compile(args)
    profile = _profile_for(program, args.profile) if args.scheme == "advanced" else None
    partitions = {}
    for name, func in program.functions.items():
        if args.scheme == "basic":
            partitions[name] = basic_partition(func)
        else:
            partitions[name] = advanced_partition(
                func, profile=profile, balance_limit=args.balance_limit
            )
    if args.interprocedural:
        decisions = decide_fp_arguments(program, partitions)
        for callee, indices in sorted(decisions.fp_params.items()):
            print(
                f"interprocedural: {callee} receives parameter(s) "
                f"{sorted(indices)} in FP registers"
            )
        if not decisions.fp_params:
            print("interprocedural: no safe FP-argument opportunities found")
        print()
    for func in program.functions.values():
        partition = partitions[func.name]
        print(annotate_partition(func, partition))
        stats = partition_stats(partition)
        print(
            f"  -> {stats['offloaded_instructions']} offloaded, "
            f"{stats['copies']} copies, {stats['dups']} duplicates, "
            f"{stats['back_copies']} back-copies"
        )
        usage = offload_by_opcode(partition)
        if usage:
            ops = ", ".join(f"{op}x{n}" for op, n in sorted(usage.items()))
            print(f"  -> opcodes: {ops}")
        print()
    if args.verify:
        from repro.ir.verify import verify_program
        from repro.lint import lint_program, partition_rule_ids, render_text
        from repro.partition.rewrite import apply_partition

        result = lint_program(
            program,
            partitions=partitions,
            profile=profile,
            scheme=args.scheme,
            rules=partition_rule_ids(),
        )
        for name, func in program.functions.items():
            kwargs = {}
            if args.interprocedural:
                kwargs = dict(
                    fp_params=decisions.fp_params.get(name),
                    fp_call_args=decisions.fp_call_args.get(name),
                    skip_back_copies=decisions.dropped_back_copies.get(name),
                    skip_param_copies=decisions.dropped_param_copies.get(name),
                )
            apply_partition(func, partitions[name], **kwargs)
        verify_program(program)
        result.extend(lint_program(program, scheme=args.scheme))
        result.finalize()
        if result.diagnostics:
            print(render_text(result))
        else:
            print("verify: structural checks and all lint rules clean")
        return 0 if result.ok else 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        Severity,
        lint_program,
        partition_rule_ids,
        render_json,
        render_text,
    )

    program = _compile(args)
    rules = [r for r in args.rules.split(",") if r.strip()] if args.rules else None
    fail_on = Severity.from_name(args.fail_on)
    if args.scheme == "none":
        result = lint_program(program, rules=rules)
    else:
        from repro.ir.verify import verify_program
        from repro.partition.advanced import advanced_partition
        from repro.partition.basic import basic_partition
        from repro.partition.rewrite import apply_partition

        profile = _profile_for(program, args.profile) if args.scheme == "advanced" else None
        partitions = {}
        for name, func in program.functions.items():
            if args.scheme == "basic":
                partitions[name] = basic_partition(func)
            else:
                partitions[name] = advanced_partition(func, profile=profile)
        partition_only = partition_rule_ids()
        pre_rules = (
            [r for r in rules if r in partition_only]
            if rules is not None
            else partition_only
        )
        result = lint_program(
            program,
            partitions=partitions,
            profile=profile,
            scheme=args.scheme,
            rules=pre_rules,
        )
        for name, func in program.functions.items():
            apply_partition(func, partitions[name])
        verify_program(program)
        post_rules = (
            [r for r in rules if r not in partition_only]
            if rules is not None
            else None
        )
        result.extend(
            lint_program(program, scheme=args.scheme, rules=post_rules)
        )
        result.finalize()
    print(render_json(result) if args.json else render_text(result))
    return 1 if result.failed(fail_on) else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.freq import static_profile
    from repro.analysis.profilecmp import compare_profiles
    from repro.analysis.warnings import analyze_program
    from repro.lint import Severity
    from repro.minic.compile import compile_source

    fail_on = Severity.from_name(args.fail_on)
    if args.file is not None:
        targets = [(args.file, _read_source(args.file))]
    else:
        from repro.workloads import WORKLOADS, workload_source

        targets = [
            (f"workload:{name}", workload_source(name, scale=args.scale))
            for name in sorted(WORKLOADS)
        ]

    documents = []
    total_warnings = 0
    for label, source in targets:
        program = compile_source(source, optimize=not args.no_opt)
        warnings = analyze_program(program)
        total_warnings += len(warnings)
        entry: dict = {
            "source": label,
            "warnings": [w.to_dict() for w in warnings],
        }
        if args.compare_profile:
            from repro.partition.advanced import advanced_partition
            from repro.partition.partition import partition_stats
            from repro.runtime.interp import run_program

            static = static_profile(program)
            measured = run_program(program).profile
            agreement = compare_profiles(program, static, measured)
            offload_static = offload_measured = 0
            intersection = union = 0
            for func in program.functions.values():
                part_s = advanced_partition(func, profile=static)
                part_m = advanced_partition(func, profile=measured)
                offload_static += partition_stats(part_s)["offloaded_instructions"]
                offload_measured += partition_stats(part_m)["offloaded_instructions"]
                intersection += len(part_s.fp & part_m.fp)
                union += len(part_s.fp | part_m.fp)
            entry["agreement"] = agreement.to_dict()
            entry["partition_impact"] = {
                "offloaded_static": offload_static,
                "offloaded_measured": offload_measured,
                "decision_agreement": round(
                    intersection / union if union else 1.0, 6
                ),
            }
        documents.append(entry)

    if args.json:
        print(
            json.dumps(
                {
                    "version": "repro-analyze/1",
                    "fail_on": str(fail_on),
                    "programs": documents,
                    "summary": {"warnings": total_warnings},
                },
                indent=2,
                sort_keys=False,
            )
        )
    else:
        for entry in documents:
            if len(documents) > 1:
                print(f"== {entry['source']} ==")
            if entry["warnings"]:
                for w in entry["warnings"]:
                    print(
                        f"warning: {w['kind']}: {w['function']}:{w['block']}: "
                        f"{w['message']}"
                    )
            else:
                print("no analysis warnings")
            if "agreement" in entry:
                agr = entry["agreement"]
                impact = entry["partition_impact"]
                matches = sum(1 for f in agr["functions"] if f["hottest_match"])
                print(
                    f"agreement: weighted overlap {agr['weighted_overlap']:.3f}, "
                    f"hottest block match {matches}/{len(agr['functions'])}, "
                    f"uncovered {len(agr['uncovered'])}"
                )
                print(
                    f"partitions: static profile offloads "
                    f"{impact['offloaded_static']} instr vs "
                    f"{impact['offloaded_measured']} measured; "
                    f"decision agreement "
                    f"{100 * impact['decision_agreement']:.1f}%"
                )
            if len(documents) > 1:
                print()
    return 1 if total_warnings and fail_on <= Severity.WARNING else 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.partition.program import partition_program
    from repro.regalloc.linear_scan import allocate_program
    from repro.runtime.interp import run_program
    from repro.runtime.trace import dynamic_mix
    from repro.sim.config import eight_way, four_way
    from repro.sim.pipeline import simulate_trace

    config = four_way() if args.width == 4 else eight_way()
    source = _read_source(args.file)

    def build(scheme: str | None):
        from repro.minic.compile import compile_source

        program = compile_source(source, optimize=not args.no_opt)
        if scheme is not None:
            profile = _profile_for(program, args.profile)
            # with --verify, partition_program also runs the linter on the
            # partitions and the rewritten IR, raising on any error.
            partition_program(
                program, scheme, profile=profile,
                lint=True if args.verify else None,
            )
        allocate_program(program)
        return program

    baseline_run = run_program(build(None), collect_trace=True, fuel=args.fuel)
    baseline = simulate_trace(baseline_run.trace, config)
    print(f"machine: {config.name}")
    print(
        f"conventional : {baseline.cycles:>9d} cycles, IPC {baseline.ipc:.2f}, "
        f"result {baseline_run.value}"
    )
    for scheme in ("basic", "advanced"):
        run = run_program(build(scheme), collect_trace=True, fuel=args.fuel)
        if run.value != baseline_run.value:
            raise ReproError(f"{scheme}: result changed ({run.value})")
        stats = simulate_trace(run.trace, config)
        offload = dynamic_mix(run.trace)["fp_executed"] / run.instructions
        print(
            f"{scheme:13s}: {stats.cycles:>9d} cycles, IPC {stats.ipc:.2f}, "
            f"offload {100 * offload:.1f}%, "
            f"speedup {100 * (baseline.cycles / stats.cycles - 1):+.1f}%"
        )
        if args.timeline and scheme == "advanced":
            from repro.sim.timeline import render_timeline, simulate_with_timeline

            _, timeline = simulate_with_timeline(run.trace, config)
            print("\npipeline timeline (advanced, first instructions):")
            print(render_timeline(timeline, max_instructions=args.timeline))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import main as report_main

    return report_main(args.experiments, jobs=args.jobs)


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.cli import run as bench_run

    return bench_run(args)


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf.cli import run as perf_run

    return perf_run(args)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import run_serve

    return run_serve(args)


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.cli import run_loadgen

    return run_loadgen(args)


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.gen.cli import run as fuzz_run

    return fuzz_run(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploiting Idle Floating-Point "
        "Resources for Integer Execution' (PLDI 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source(p):
        p.add_argument("file", help="MiniC source file, - for stdin, or "
                                    "workload:<name> for a registered workload")
        p.add_argument("--no-opt", action="store_true", help="skip optimizations")

    p = sub.add_parser("compile", help="compile MiniC and print the IR")
    add_source(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="compile and execute")
    add_source(p)
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.set_defaults(fn=cmd_run)

    def add_profile(p):
        p.add_argument(
            "--profile", choices=("measured", "static", "estimate"),
            default="measured",
            help="profile source for the advanced cost model: execute the "
                 "program (measured), Ball/Wu-Larus static estimation "
                 "(static), or the paper's p_B*5^d fallback (estimate)")

    p = sub.add_parser("partition", help="show the partition, annotated")
    add_source(p)
    p.add_argument("--scheme", choices=("basic", "advanced"), default="advanced")
    add_profile(p)
    p.add_argument("--balance-limit", type=float, default=None,
                   help="optional FPa share cap (the §6.6 extension)")
    p.add_argument("--interprocedural", action="store_true",
                   help="pass integer arguments in FP registers where safe "
                        "(the §6.6 extension)")
    p.add_argument("--verify", action="store_true",
                   help="rewrite the partitioned program, run the structural "
                        "verifier plus all lint rules, and exit non-zero on "
                        "errors")
    p.set_defaults(fn=cmd_partition)

    p = sub.add_parser("lint", help="static checks on partitioned IR")
    add_source(p)
    p.add_argument("--scheme", choices=("basic", "advanced", "none"),
                   default="advanced",
                   help="partition + rewrite with this scheme before linting; "
                        "'none' lints the compiled IR as-is")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON diagnostics")
    p.add_argument("--fail-on", choices=("note", "warning", "error"),
                   default="error",
                   help="lowest severity that makes the exit status non-zero")
    p.add_argument("--rules", default=None, metavar="ID,ID",
                   help="comma-separated rule ids to run (default: all)")
    add_profile(p)
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="abstract-interpretation warnings and static-profile agreement",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="MiniC source file, - for stdin, or workload:<name>; "
                        "omit to analyze every registered workload")
    p.add_argument("--no-opt", action="store_true", help="skip optimizations")
    p.add_argument("--scale", type=int, default=3,
                   help="workload scale when FILE is omitted (default: 3)")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable repro-analyze/1 document")
    p.add_argument("--fail-on", choices=("note", "warning", "error"),
                   default="error",
                   help="lowest severity that makes the exit status non-zero "
                        "(analysis findings are warnings; the default "
                        "'error' never fails)")
    p.add_argument("--compare-profile", action="store_true",
                   help="also compare the static profile against a measured "
                        "run and report partition impact")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("simulate", help="conventional vs partitioned timing")
    add_source(p)
    p.add_argument("--width", type=int, choices=(4, 8), default=4)
    add_profile(p)
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.add_argument("--timeline", type=int, default=0, metavar="N",
                   help="print an N-instruction pipeline diagram of the "
                        "advanced-scheme run")
    p.add_argument("--verify", action="store_true",
                   help="run the structural verifier plus all lint rules on "
                        "each partitioned build, exiting non-zero on errors")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("report", help="regenerate the paper's tables/figures")
    p.add_argument("experiments", nargs="*", default=[])
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for pipeline cells; 0 = one per "
                        "CPU (default: 1)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "bench",
        help="run the benchmark matrix in parallel, emit BENCH_<suite>.json",
    )
    from repro.bench.cli import configure_parser as configure_bench_parser

    configure_bench_parser(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "perf",
        help="per-branch performance history and degradation detection",
    )
    from repro.perf.cli import configure_parser as configure_perf_parser

    configure_perf_parser(p)
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser(
        "serve",
        help="long-running HTTP daemon: compile/lint/partition/simulate/"
        "bench-cell with admission control and graceful drain",
    )
    from repro.serve.cli import configure_serve_parser

    configure_serve_parser(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a repro serve daemon, emit BENCH_serve.json",
    )
    from repro.serve.cli import configure_loadgen_parser

    configure_loadgen_parser(p)
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser(
        "fuzz",
        help="differential partition fuzzing: random MiniC vs the §6.1 "
        "contract, with crash bundles and a replayable corpus",
    )
    from repro.gen.cli import configure_parser as configure_fuzz_parser

    configure_fuzz_parser(p)
    p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except OSError as exc:
        # covers FileNotFoundError, IsADirectoryError, PermissionError
        # on the input path — a clean message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_IO


if __name__ == "__main__":
    raise SystemExit(main())
