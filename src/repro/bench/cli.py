"""``repro bench`` — run the experiment matrix, emit BENCH JSON.

Examples::

    repro bench --suite fig8 --jobs 4
    repro bench --suite fig8 --jobs 4 --baseline benchmarks/baseline.json
    repro bench --validate BENCH_fig8.json
    repro bench --list
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.errors import ReproError


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suite",
        default="fig8",
        metavar="NAME",
        help="experiment suite to run (see --list; default: fig8)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; 0 = one per CPU (default: 1, serial)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="force one workload scale on every cell (default: per-workload)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="BENCH JSON path (default: BENCH_<suite>.json; '-' = stdout only)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-bench-cache",
        metavar="DIR",
        help="on-disk result cache directory (default: .repro-bench-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk cache",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell even on cache hits (cache is rewritten)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare against this committed BENCH JSON; exit 1 on slowdown",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed cycle-count slowdown vs the baseline, in percent "
        "(default: 10)",
    )
    parser.add_argument(
        "--validate",
        default=None,
        metavar="PATH",
        help="only validate an existing BENCH JSON file, then exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_suites",
        help="list available suites and their cells, then exit",
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="suppress per-cell progress lines",
    )


def run(args: argparse.Namespace) -> int:
    from repro.bench.cache import ResultCache
    from repro.bench.compare import compare_documents, format_report
    from repro.bench.harness import run_cells
    from repro.bench.matrix import SUITES, suite_cells
    from repro.bench.results import (
        build_document,
        load_document,
        save_document,
        validate_document,
    )

    if args.list_suites:
        for name in sorted(SUITES):
            cells = SUITES[name]()
            print(f"{name:8s} {len(cells):3d} cells  "
                  + ", ".join(c.label for c in cells[:4])
                  + (", ..." if len(cells) > 4 else ""))
        return 0

    if args.validate is not None:
        doc = load_document(args.validate)
        validate_document(doc)
        print(
            f"{args.validate}: valid {doc['schema']} document, "
            f"suite {doc['suite']!r}, {len(doc['cells'])} cells"
        )
        return 0

    cells = suite_cells(args.suite, scale=args.scale)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(outcome) -> None:
        if args.quiet:
            return
        tag = outcome.source if outcome.cached else f"{outcome.seconds:6.2f}s"
        print(
            f"  [{tag:>8s}] {outcome.cell.label:32s} "
            f"{outcome.result.cycles:>9d} cycles",
            file=sys.stderr,
        )

    print(
        f"suite {args.suite!r}: {len(cells)} cells, jobs={jobs}, "
        f"cache={'off' if cache is None else args.cache_dir}",
        file=sys.stderr,
    )
    start = time.perf_counter()
    outcomes = run_cells(
        cells, jobs=jobs, cache=cache, force=args.force, progress=progress
    )
    total_seconds = time.perf_counter() - start

    hits = sum(1 for o in outcomes if o.cached)
    doc = build_document(
        args.suite,
        outcomes,
        jobs=jobs,
        total_seconds=total_seconds,
        # replay rate over memo + disk; cache.stats() alone misses memo hits
        cache_stats={
            "dir": None if cache is None else str(cache.root),
            "hits": hits,
            "misses": len(outcomes) - hits,
            "hit_rate": hits / len(outcomes) if outcomes else 0.0,
        },
    )
    validate_document(doc)

    output = args.output
    if output is None:
        output = f"BENCH_{args.suite}.json"
    if output == "-":
        import json

        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        save_document(doc, output)

    compute_total = sum(o.compute_seconds for o in outcomes)
    print(
        f"{len(outcomes)} cells in {total_seconds:.1f}s wall "
        f"({compute_total:.1f}s of pipeline work; {hits} replayed from "
        f"cache, hit rate {hits / len(outcomes):.0%})"
        + (f"; wrote {output}" if output != "-" else ""),
        file=sys.stderr,
    )

    if args.baseline is not None:
        baseline = load_document(args.baseline)
        validate_document(baseline)
        report = compare_documents(doc, baseline, tolerance=args.tolerance / 100.0)
        print(format_report(report))
        if not report.ok:
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.bench.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro bench", description=__doc__.splitlines()[0]
    )
    configure_parser(parser)
    try:
        return run(parser.parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
