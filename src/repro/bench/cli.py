"""``repro bench`` — run the experiment matrix, emit BENCH JSON.

Examples::

    repro bench --suite fig8 --jobs 4
    repro bench --suite fig8 --jobs 4 --baseline benchmarks/baseline.json
    repro bench --suite all --jobs 8 --timeout 300 --retries 2
    repro bench --suite all --resume          # continue a killed sweep
    repro bench --validate BENCH_fig8.json
    repro bench --list

A failing or hung cell no longer aborts the sweep: it is recorded in
the document's ``failures`` section and the run exits 4 when the count
exceeds ``--max-failures`` (default 0, so CI still fails loudly).  The
run journal (``<output>.journal``) makes an interrupted sweep resumable
with ``--resume``; it is deleted after a fully clean run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.errors import EXIT_BENCH_FAILURES, ReproError, exit_code_for


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suite",
        default="fig8",
        metavar="NAME",
        help="experiment suite to run (see --list; default: fig8)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; 0 = one per CPU (default: 1, serial)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="force one workload scale on every cell (default: per-workload)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="BENCH JSON path (default: BENCH_<suite>.json; '-' = stdout only)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-bench-cache",
        metavar="DIR",
        help="on-disk result cache directory (default: .repro-bench-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk cache",
    )
    parser.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="on-disk packed-trace store: interpret each (workload, "
        "scheme) once and replay the trace for every machine config "
        "(equivalent to REPRO_TRACE_CACHE=DIR; default: env/off)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell even on cache hits (cache is rewritten)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="per-cell stall limit; a cell whose heartbeat advances is "
        "granted more time, a stalled cell is killed and recorded "
        "(default: none)",
    )
    parser.add_argument(
        "--hard-timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="absolute per-cell wall-clock ceiling; kills the cell even "
        "while it is still making progress (default: unlimited)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts per failing cell before recording the "
        "failure (default: 1)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        metavar="K",
        help="open a (workload, scheme) family's circuit breaker after "
        "K consecutive failed attempts and fail its remaining cells "
        "fast (default: 0, disabled)",
    )
    parser.add_argument(
        "--checkpoint-cycles",
        type=int,
        default=None,
        metavar="N",
        help="snapshot simulator state every N cycles so a killed or "
        "retried cell resumes mid-simulation (equivalent to "
        "REPRO_CKPT_CYCLES=N; default: env/off)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="checkpoint directory (equivalent to REPRO_CKPT_DIR; "
        "default: env or .repro-ckpt)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="SECS",
        help="base of the exponential retry delay (default: 0.5)",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=0,
        metavar="N",
        help="tolerate up to N failed cells before exiting non-zero "
        "(default: 0 — any failure fails the run)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay finished cells from the run journal of an "
        "interrupted sweep, recomputing only the rest",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare against this committed BENCH JSON; exit 1 on slowdown",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed cycle-count slowdown vs the baseline, in percent "
        "(default: 10)",
    )
    parser.add_argument(
        "--validate",
        default=None,
        metavar="PATH",
        help="only validate an existing BENCH JSON file, then exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_suites",
        help="list available suites and their cells, then exit",
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="suppress per-cell progress lines",
    )


def run(args: argparse.Namespace) -> int:
    from repro.bench.cache import ResultCache, cell_key, code_fingerprint
    from repro.bench.compare import compare_documents, format_report
    from repro.bench.harness import CellError, CellOutcome, RunReport, run_cells
    from repro.bench.journal import RunJournal
    from repro.bench.matrix import Cell, SUITES, suite_cells
    from repro.bench.results import (
        build_document,
        load_document,
        outcome_cell_doc,
        result_from_dict,
        save_document,
        validate_document,
    )

    if args.list_suites:
        for name in sorted(SUITES):
            cells = SUITES[name]()
            print(f"{name:8s} {len(cells):3d} cells  "
                  + ", ".join(c.label for c in cells[:4])
                  + (", ..." if len(cells) > 4 else ""))
        from repro.gen import GENERATORS

        print()
        print("generator specs (usable anywhere a workload name is; "
              "see docs/fuzzing.md):")
        for gname in sorted(GENERATORS):
            generator = GENERATORS[gname]
            axes = ", ".join(generator.axes)
            print(f"  gen:{gname:8s} {generator.description}  [axes: {axes}]")
        print("  example: repro bench --suite gen-smoke, or any cell with "
              "workload='gen:mixer?seed=7&ldst=0.3'")
        return 0

    if args.validate is not None:
        doc = load_document(args.validate)
        validate_document(doc)
        print(
            f"{args.validate}: valid {doc['schema']} document, "
            f"suite {doc['suite']!r}, {len(doc['cells'])} cells"
        )
        return 0

    cells = suite_cells(args.suite, scale=args.scale)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    if args.trace_cache is not None:
        # via the environment so pool workers inherit the setting
        from repro.trace.store import TRACE_CACHE_ENV

        os.environ[TRACE_CACHE_ENV] = args.trace_cache
    if args.checkpoint_cycles is not None:
        # same environment relay as --trace-cache: simulation
        # checkpointing happens inside the pool workers
        from repro.checkpoint import CKPT_CYCLES_ENV

        os.environ[CKPT_CYCLES_ENV] = str(max(0, args.checkpoint_cycles))
    if args.checkpoint_dir is not None:
        from repro.checkpoint import CKPT_DIR_ENV

        os.environ[CKPT_DIR_ENV] = args.checkpoint_dir
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    code_version = code_fingerprint()

    output = args.output
    if output is None:
        output = f"BENCH_{args.suite}.json"
    journal_name = output if output != "-" else f"BENCH_{args.suite}.json"
    journal = RunJournal(f"{journal_name}.journal")

    # -- resume: replay finished cells from an interrupted sweep -------
    resumed: list[CellOutcome] = []
    if args.resume and journal.matches(args.suite, code_version):
        _, entries = journal.load()
        replayable: dict[str, dict] = {}
        for entry in entries:
            if entry.get("status") == "ok" and entry.get("key"):
                replayable[entry["key"]] = entry  # last write wins
        for entry in replayable.values():
            try:
                result = result_from_dict(entry["result"])
                cell = Cell.from_dict(entry)
            except (ReproError, KeyError, TypeError):
                continue  # damaged line: just recompute that cell
            resumed.append(
                CellOutcome(
                    cell, result, entry["key"], True, "journal", 0.0,
                    float(entry.get("compute_seconds", 0.0)),
                )
            )
        if resumed and not args.quiet:
            print(
                f"resuming from {journal.path}: {len(resumed)} finished "
                "cells replayed",
                file=sys.stderr,
            )
    elif args.resume:
        print(
            f"note: no matching run journal at {journal.path}; "
            "running the full suite",
            file=sys.stderr,
        )
    resumed_keys = {o.key for o in resumed}
    todo = [c for c in cells if cell_key(c) not in resumed_keys]

    journal.start(args.suite, code_version, fresh=not resumed)

    def progress(outcome) -> None:
        journal.record(outcome_cell_doc(outcome))
        if args.quiet:
            return
        if not outcome.ok:
            error = outcome.error or CellError("Unknown", "unknown", "")
            print(
                f"  [{outcome.status.upper():>8s}] {outcome.cell.label:32s} "
                f"{error.type} at {error.stage}: {error.message}",
                file=sys.stderr,
            )
            return
        tag = outcome.source if outcome.cached else f"{outcome.seconds:6.2f}s"
        print(
            f"  [{tag:>8s}] {outcome.cell.label:32s} "
            f"{outcome.result.cycles:>9d} cycles",
            file=sys.stderr,
        )

    print(
        f"suite {args.suite!r}: {len(cells)} cells, jobs={jobs}, "
        f"cache={'off' if cache is None else args.cache_dir}",
        file=sys.stderr,
    )
    start = time.perf_counter()
    run_report = RunReport()
    try:
        outcomes = resumed + run_cells(
            todo,
            jobs=jobs,
            cache=cache,
            force=args.force,
            progress=progress,
            timeout=args.timeout,
            hard_timeout=args.hard_timeout,
            retries=max(0, args.retries),
            backoff=max(0.0, args.backoff),
            breaker_threshold=max(0, args.breaker_threshold),
            report=run_report,
        )
    finally:
        journal.close()
    total_seconds = time.perf_counter() - start
    # report in suite order, regardless of resume/completion order
    by_key = {o.key: o for o in outcomes}
    outcomes = [by_key[k] for k in dict.fromkeys(cell_key(c) for c in cells)]

    hits = sum(1 for o in outcomes if o.cached)
    doc = build_document(
        args.suite,
        outcomes,
        jobs=jobs,
        total_seconds=total_seconds,
        # replay rate over memo + disk; cache.stats() alone misses memo hits
        cache_stats={
            "dir": None if cache is None else str(cache.root),
            "hits": hits,
            "misses": len(outcomes) - hits,
            "hit_rate": hits / len(outcomes) if outcomes else 0.0,
        },
        code_version=code_version,
        breakers=run_report.breakers,
    )
    validate_document(doc)

    if output == "-":
        import json

        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        save_document(doc, output)

    failures = doc["failures"]
    if not failures:
        journal.remove()  # clean run: nothing left to resume

    compute_total = sum(o.compute_seconds for o in outcomes)
    print(
        f"{len(outcomes)} cells in {total_seconds:.1f}s wall "
        f"({compute_total:.1f}s of pipeline work; {hits} replayed from "
        f"cache, hit rate {hits / len(outcomes):.0%}"
        f"{f', {len(failures)} FAILED' if failures else ''})"
        + (f"; wrote {output}" if output != "-" else ""),
        file=sys.stderr,
    )
    for failure in failures:
        error = failure.get("error", {})
        print(
            f"  failure: {failure['workload']}/{failure['scheme']}/"
            f"{failure['width']}-way [{failure['status']}] "
            f"{error.get('type')} at {error.get('stage')}: "
            f"{error.get('message')}",
            file=sys.stderr,
        )
        fail_progress = failure.get("progress")
        if fail_progress:
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(fail_progress.items())
            )
            print(f"    progress: {detail}", file=sys.stderr)
    for family, state in sorted((doc.get("breakers") or {}).items()):
        if state.get("state") == "open":
            print(
                f"  breaker OPEN: {family} after "
                f"{state.get('consecutive_failures')} consecutive failures "
                f"({state.get('skipped_cells', 0)} cell(s) skipped)",
                file=sys.stderr,
            )
    if len(failures) > args.max_failures:
        print(
            f"error: {len(failures)} failed cell(s) exceed "
            f"--max-failures {args.max_failures} "
            f"(journal kept at {journal.path} for --resume)",
            file=sys.stderr,
        )
        return EXIT_BENCH_FAILURES

    if args.baseline is not None:
        baseline = load_document(args.baseline)
        validate_document(baseline)
        report = compare_documents(doc, baseline, tolerance=args.tolerance / 100.0)
        print(format_report(report))
        if not report.ok:
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.bench.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro bench", description=__doc__.splitlines()[0]
    )
    configure_parser(parser)
    try:
        return run(parser.parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    raise SystemExit(main())
