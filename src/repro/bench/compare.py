"""Baseline comparison — the CI perf gate.

Compares a freshly produced BENCH document against a committed baseline
(``benchmarks/baseline.json``).  Cells are matched on
(workload, scheme, width, scale); for each match the *simulated* cycle
count is compared with a relative tolerance.  Cycle counts are
deterministic, so on unchanged code they agree exactly; the tolerance
is headroom for intentional compiler/partitioner changes that move
cycles a little without being a regression.  Functional checksums must
match exactly — a checksum drift means the pipeline computes different
answers, which no tolerance excuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _identity(cell: dict) -> tuple:
    return (cell["workload"], cell["scheme"], cell["width"], cell.get("scale"))


def _label(identity: tuple) -> str:
    workload, scheme, width, scale = identity
    suffix = f"@{scale}" if scale is not None else ""
    return f"{workload}/{scheme}/{width}-way{suffix}"


@dataclass(frozen=True, slots=True)
class CellDelta:
    """Cycle comparison of one matched cell."""

    label: str
    baseline_cycles: int
    current_cycles: int

    @property
    def ratio(self) -> float:
        return self.current_cycles / self.baseline_cycles


@dataclass(eq=False, slots=True)
class ComparisonReport:
    tolerance: float
    matched: list[CellDelta] = field(default_factory=list)
    regressions: list[CellDelta] = field(default_factory=list)
    improvements: list[CellDelta] = field(default_factory=list)
    checksum_mismatches: list[str] = field(default_factory=list)
    missing_in_current: list[str] = field(default_factory=list)
    missing_in_baseline: list[str] = field(default_factory=list)
    #: Labels of cells the current run recorded in ``failures``.
    #: Informational here: failed cells that the baseline also has are
    #: already gated via ``missing_in_current``, and the bench CLI gates
    #: the total count via ``--max-failures``.
    failed_in_current: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing got slower and nothing computes differently.

        Cells missing from the *current* run also fail: silently
        dropping a benchmark is how regressions hide.
        """
        return not (
            self.regressions or self.checksum_mismatches or self.missing_in_current
        )


def compare_documents(
    current: dict, baseline: dict, tolerance: float = 0.10
) -> ComparisonReport:
    """Gate ``current`` against ``baseline`` (see module docstring)."""
    report = ComparisonReport(tolerance=tolerance)
    current_cells = {_identity(c): c for c in current.get("cells", [])}
    baseline_cells = {_identity(c): c for c in baseline.get("cells", [])}
    for failure in current.get("failures", []):
        report.failed_in_current.append(
            f"{_label(_identity(failure))} ({failure.get('status', 'failed')})"
        )

    for identity in sorted(set(baseline_cells) - set(current_cells)):
        report.missing_in_current.append(_label(identity))
    for identity in sorted(set(current_cells) - set(baseline_cells)):
        report.missing_in_baseline.append(_label(identity))

    for identity in sorted(set(baseline_cells) & set(current_cells)):
        base = baseline_cells[identity]["result"]
        cur = current_cells[identity]["result"]
        label = _label(identity)
        if base.get("checksum") != cur.get("checksum"):
            report.checksum_mismatches.append(
                f"{label}: checksum {base.get('checksum')} -> {cur.get('checksum')}"
            )
            continue
        delta = CellDelta(label, base["cycles"], cur["cycles"])
        report.matched.append(delta)
        if delta.current_cycles > delta.baseline_cycles * (1.0 + tolerance):
            report.regressions.append(delta)
        elif delta.current_cycles < delta.baseline_cycles * (1.0 - tolerance):
            report.improvements.append(delta)
    return report


def format_report(report: ComparisonReport) -> str:
    pct = 100.0 * report.tolerance
    lines = [
        f"baseline comparison (tolerance ±{pct:.0f}% on simulated cycles):",
        f"  matched cells : {len(report.matched)}",
    ]
    for delta in report.regressions:
        lines.append(
            f"  REGRESSION    : {delta.label}: {delta.baseline_cycles} -> "
            f"{delta.current_cycles} cycles ({100 * (delta.ratio - 1):+.1f}%)"
        )
    for mismatch in report.checksum_mismatches:
        lines.append(f"  CHECKSUM      : {mismatch}")
    for label in report.missing_in_current:
        lines.append(f"  MISSING       : {label} (in baseline, not in this run)")
    for label in report.failed_in_current:
        lines.append(f"  failed        : {label} (recorded in failures)")
    for delta in report.improvements:
        lines.append(
            f"  improvement   : {delta.label}: {delta.baseline_cycles} -> "
            f"{delta.current_cycles} cycles ({100 * (delta.ratio - 1):+.1f}%)"
        )
    for label in report.missing_in_baseline:
        lines.append(f"  new cell      : {label} (not in baseline)")
    lines.append("  verdict       : " + ("OK" if report.ok else "FAIL"))
    return "\n".join(lines)
