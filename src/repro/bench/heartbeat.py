"""Worker heartbeats: the supervisor's window into a busy cell.

A pool worker installs a :class:`HeartbeatWriter` as its process's
progress sink (:mod:`repro.progress`), so the pipeline's periodic
``report_progress`` calls — interpreter instruction counts, simulator
cycle/retire counters, stage transitions, checkpoint events — accumulate
into one small JSON file the supervising parent can read from outside
the process.  The parent's watchdog does not parse trends; it only asks
*"did the heartbeat change since I last looked?"* — any change is
progress, no change past the soft deadline is a stall.

Writes are throttled (wall clock) and atomic (tmp + rename, no fsync —
losing the last beat to a crash is harmless), so the hot simulation
loop pays a dict merge per report and an actual write at most a few
times per second.  Reads are defensive: a missing or torn file reads
as "no heartbeat yet".
"""

from __future__ import annotations

import json
import os
import time

from repro.ioutil import atomic_write_bytes

#: Minimum wall-clock seconds between actual file writes.
WRITE_INTERVAL = 0.2

#: Progress fields surfaced into failure reports, in display order.
PROGRESS_FIELDS = (
    "stage",
    "executed",
    "cycles",
    "retired",
    "checkpoint_cycle",
    "resumed_from_cycle",
)


class HeartbeatWriter:
    """A :class:`~repro.progress.ProgressSink` backed by one file.

    With ``path=None`` the writer is memory-only (the serial harness
    path uses this to capture progress without any file traffic).
    """

    def __init__(self, path: str | os.PathLike | None) -> None:
        self.path = None if path is None else os.fspath(path)
        self.fields: dict = {}
        self.beats = 0
        self._dirty = False
        self._last_write = 0.0

    def update(self, **fields) -> None:
        for key, value in fields.items():
            if self.fields.get(key) != value:
                self.fields[key] = value
                self._dirty = True
        if not self._dirty:
            return
        now = time.monotonic()
        if self.path is not None and now - self._last_write >= WRITE_INTERVAL:
            self.flush(now)

    def flush(self, now: float | None = None) -> None:
        """Force the current fields out to the file (crash-atomic)."""
        if self.path is None or not self._dirty:
            self._dirty = False
            return
        self.beats += 1
        doc = {"beat": self.beats, "fields": self.fields}
        data = json.dumps(doc, sort_keys=True).encode("utf-8")
        try:
            atomic_write_bytes(self.path, data, fsync=False)
        except OSError:
            return  # heartbeats are advisory; never fail the cell
        self._dirty = False
        self._last_write = time.monotonic() if now is None else now


def read_heartbeat(path: str | os.PathLike) -> tuple[bytes | None, dict]:
    """The raw signature and parsed fields of a heartbeat file.

    Returns ``(None, {})`` when the file does not exist (or cannot be
    read — the worker may have died mid-everything).  The signature is
    the raw bytes: the watchdog compares it against the previous read,
    and *any* difference counts as progress.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None, {}
    try:
        doc = json.loads(data.decode("utf-8"))
        fields = doc.get("fields")
        if not isinstance(fields, dict):
            fields = {}
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError):
        fields = {}
    return data, fields


def progress_summary(fields: dict) -> dict | None:
    """Reduce heartbeat fields to the failure-report ``progress`` doc.

    Keeps the known counters (see :data:`PROGRESS_FIELDS`) and adds
    ``checkpoint`` — whether a checkpoint was published, i.e. whether a
    retry can resume mid-simulation.  Returns ``None`` when the worker
    never reported anything.
    """
    if not fields:
        return None
    summary = {
        key: fields[key] for key in PROGRESS_FIELDS if key in fields
    }
    summary["checkpoint"] = "checkpoint_cycle" in fields
    return summary
