"""Benchmark harness: the experiment matrix, parallel execution, and a
content-addressed result cache.

The paper's evaluation is a matrix — workload × machine config ×
partitioning scheme (Figures 8–10, Tables 1–2).  Every cell of that
matrix is an independent, deterministic pipeline run
(compile → partition → simulate), which makes the whole sweep trivially
parallel and perfectly cacheable:

* :mod:`repro.bench.matrix` names the cells and the standard suites
  (``fig8``, ``fig9``, ``fig10``, ``fp``, ``all``, ``smoke``).
* :mod:`repro.bench.cache` is a content-addressed on-disk cache keyed
  on workload source + partition options + machine config + code
  version, with atomic (tmp-file + rename) writes so parallel workers
  and interrupted runs cannot corrupt it.
* :mod:`repro.bench.harness` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` and replays cached
  cells instantly.
* :mod:`repro.bench.results` serializes results and builds the
  versioned, machine-readable ``BENCH_<suite>.json`` documents.
* :mod:`repro.bench.compare` gates a fresh document against a
  committed baseline with a slowdown tolerance (the CI perf gate).

Command line::

    python -m repro bench --suite fig8 --jobs 4 -o BENCH_fig8.json \
        --baseline benchmarks/baseline.json
"""

from repro.bench.cache import ResultCache, cell_key, code_fingerprint
from repro.bench.compare import compare_documents, format_report
from repro.bench.harness import CellOutcome, RunReport, clear_memo, run_cells
from repro.bench.matrix import SUITES, Cell, suite_cells
from repro.bench.results import (
    BENCH_SCHEMA,
    build_document,
    result_from_dict,
    result_to_dict,
    validate_document,
)

__all__ = [
    "BENCH_SCHEMA",
    "Cell",
    "CellOutcome",
    "ResultCache",
    "RunReport",
    "SUITES",
    "build_document",
    "cell_key",
    "clear_memo",
    "code_fingerprint",
    "compare_documents",
    "format_report",
    "result_from_dict",
    "result_to_dict",
    "run_cells",
    "suite_cells",
    "validate_document",
]
