"""Crash-safe run journal backing ``repro bench --resume``.

The journal is a JSON-lines file next to the BENCH output
(``<output>.journal``): a header line identifying the run (schema,
suite, code version), then one line per resolved cell, appended and
fsynced as the sweep progresses.  Killing the sweep at any instant
loses at most the line being written; on load, a torn trailing line is
ignored, so resume recovers every cell that fully resolved.

Resume only trusts a journal whose suite **and code version** match the
current run — a code change invalidates recorded results exactly like
it invalidates the on-disk cache.  Only ``ok`` entries are replayed;
failed or timed-out cells are recomputed, which is what a retry after
fixing the cause wants.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Bump on incompatible journal layout changes.
JOURNAL_SCHEMA = "repro-bench-journal/1"


class RunJournal:
    """Append-only journal of one benchmark sweep."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._handle = None

    # -- writing -------------------------------------------------------
    def start(self, suite: str, code_version: str, *, fresh: bool = True) -> None:
        """Open for writing; ``fresh`` truncates, else appends (resume)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "w" if fresh else "a"
        self._handle = open(self.path, mode, encoding="utf-8")
        if fresh or self.path.stat().st_size == 0:
            self._write_line(
                {
                    "schema": JOURNAL_SCHEMA,
                    "suite": suite,
                    "code_version": code_version,
                }
            )

    def record(self, cell_doc: dict) -> None:
        """Append one resolved cell (see ``results.outcome_cell_doc``)."""
        if self._handle is None:
            raise RuntimeError("journal not started")
        self._write_line(cell_doc)

    def _write_line(self, doc: dict) -> None:
        self._handle.write(json.dumps(doc, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def remove(self) -> None:
        """Close and delete — the run completed, nothing to resume."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    # -- reading -------------------------------------------------------
    def load(self) -> tuple[dict | None, list[dict]]:
        """Parse ``(header, entries)``, tolerating a torn trailing line.

        Returns ``(None, [])`` when the file is missing or its first
        line is not a valid header.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return None, []
        header: dict | None = None
        entries: list[dict] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a crash mid-append
            if not isinstance(doc, dict):
                continue
            if header is None:
                if doc.get("schema") != JOURNAL_SCHEMA:
                    return None, []
                header = doc
            else:
                entries.append(doc)
        return header, entries

    def matches(self, suite: str, code_version: str) -> bool:
        """True when the journal on disk belongs to this exact run."""
        header, _ = self.load()
        return (
            header is not None
            and header.get("suite") == suite
            and header.get("code_version") == code_version
        )
