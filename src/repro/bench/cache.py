"""Content-addressed on-disk result cache.

A cache entry is one simulated matrix cell.  Its key is the SHA-256 of
everything the result depends on:

* the workload's **generated MiniC source** (so a workload edit or a
  scale change re-runs the cell),
* the **partition options** (scheme, cost parameters, profile use,
  balance limit, interprocedural flag, register allocation),
* the **machine configuration** (every Table 1 parameter, including
  cache and predictor geometry),
* the **code version** — a fingerprint over every ``repro`` source
  file, so any change to the compiler, partitioner or simulator
  invalidates the whole cache.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json``.  Writes
go to a unique temporary file in the same directory followed by
:func:`os.replace`, which is atomic on POSIX: concurrent workers may
race to publish the same key (last rename wins, contents are identical
because keys are content-addressed) and an interrupted run leaves at
worst an ignored ``*.tmp-*`` file, never a truncated entry.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import threading
from dataclasses import asdict
from pathlib import Path

from repro.faults import corrupt_point
from repro.ioutil import atomic_write_bytes, reap_orphan_tmp_files
from repro.partition.cost import CostParams
from repro.sim.config import MachineConfig, eight_way, four_way
from repro.trace.pack import TRACE_FORMAT_VERSION

#: Bump when the entry layout or key derivation changes incompatibly.
CACHE_SCHEMA = 1

#: Environment variable that opts library entry points (``repro
#: report``, ``cached_run_benchmark``) into disk caching.
CACHE_ENV = "REPRO_BENCH_CACHE"


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Any code change — optimizer, partitioner, simulator, workload
    generator — yields a new fingerprint and therefore a cold cache;
    stale results can never leak across versions.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def config_fingerprint(config: MachineConfig) -> dict:
    """Every machine parameter as a plain JSON-able dict."""
    return asdict(config)


def _config_for_width(width: int) -> MachineConfig:
    return four_way() if width == 4 else eight_way()


def cell_key(
    cell,
    *,
    cost_params: CostParams | None = None,
    use_profile: bool = True,
    regalloc: bool = True,
    balance_limit: float | None = None,
    interprocedural: bool = False,
    code_version: str | None = None,
) -> str:
    """Content hash of one matrix cell (see module docstring).

    ``cell`` is a :class:`repro.bench.matrix.Cell`.  The default keyword
    values mirror :func:`repro.experiments.runner.run_benchmark`.
    """
    from repro.workloads import workload_source

    params = cost_params if cost_params is not None else CostParams()
    payload = {
        "cache_schema": CACHE_SCHEMA,
        # results are computed from packed traces, so an incompatible
        # pack-format bump must also invalidate cached cell results
        "trace_format": TRACE_FORMAT_VERSION,
        "workload": cell.workload,
        "scale": cell.scale,
        "source_sha256": sha256_text(workload_source(cell.workload, cell.scale)),
        "scheme": cell.scheme,
        "partition_options": {
            "cost_params": params.as_dict(),
            "use_profile": use_profile,
            "regalloc": regalloc,
            "balance_limit": balance_limit,
            "interprocedural": interprocedural,
        },
        "machine": config_fingerprint(_config_for_width(cell.width)),
        "code_version": code_version
        if code_version is not None
        else code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of content-addressed cell results with atomic writes.

    Instances are thread-safe: entry files are published atomically, and
    the hit/miss accounting is guarded by a lock so the many worker
    threads of a ``repro serve`` daemon can share one instance (see
    :func:`shared_result_cache`) without losing counts.  Opening a cache
    also reaps stale ``*.tmp-*`` orphans left by writers that were
    killed mid-publish.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        reap_orphan_tmp_files(self.root)

    @classmethod
    def from_env(cls, env: str = CACHE_ENV) -> "ResultCache | None":
        """Cache at ``$REPRO_BENCH_CACHE``, or ``None`` when unset/empty."""
        value = os.environ.get(env, "").strip()
        if not value or value == "0":
            return None
        return cls(value)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored entry, or ``None`` on miss/corruption.

        A torn or garbage file (e.g. from a crashed writer on a
        filesystem without atomic rename) is treated as a miss, never
        an error — the cell is simply recomputed and rewritten.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            with self._lock:
                self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("cache_schema") != CACHE_SCHEMA
            or entry.get("key") != key
        ):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        # chaos hook: REPRO_FAULTS can hand back a scrambled entry here,
        # proving readers treat cache contents as untrusted input
        return corrupt_point("cache.get", entry, label=key)

    def put(self, key: str, entry: dict) -> None:
        """Atomically publish ``entry`` under ``key``."""
        entry = dict(entry)
        entry["cache_schema"] = CACHE_SCHEMA
        entry["key"] = key
        data = json.dumps(entry, sort_keys=True).encode("utf-8")
        atomic_write_bytes(self.path_for(key), data)

    def stats(self) -> dict:
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return {
            "dir": str(self.root),
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }


#: Process-wide shared instances, keyed by resolved root directory.  A
#: long-running daemon serves every client from one warm instance, so
#: hit-rate accounting is meaningful across requests.
_SHARED: dict[str, ResultCache] = {}
_SHARED_LOCK = threading.Lock()


def _after_fork_reinit() -> None:
    # forked pool workers must not inherit locks captured mid-acquisition
    global _SHARED_LOCK
    _SHARED_LOCK = threading.Lock()
    for cache in _SHARED.values():
        cache._lock = threading.Lock()


os.register_at_fork(after_in_child=_after_fork_reinit)


def shared_result_cache(root: str | os.PathLike) -> ResultCache:
    """The process-wide :class:`ResultCache` for ``root`` (one per dir)."""
    key = str(Path(root).resolve())
    with _SHARED_LOCK:
        cache = _SHARED.get(key)
        if cache is None:
            cache = ResultCache(root)
            _SHARED[key] = cache
        return cache


def clear_shared_result_caches() -> None:
    """Forget the shared instances (tests)."""
    with _SHARED_LOCK:
        _SHARED.clear()
