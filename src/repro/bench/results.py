"""Serialization of benchmark results and the BENCH JSON document.

``BENCH_<suite>.json`` is the machine-readable trajectory artifact CI
uploads and gates on.  Layout (schema ``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "suite": "fig8",
      "created_unix": 1754000000.0,
      "code_version": "<sha256 of the repro sources>",
      "host": {"platform": ..., "python": ..., "cpu_count": ...},
      "jobs": 4,
      "total_seconds": 12.3,
      "cache": {"dir": ..., "hits": 12, "misses": 2, "hit_rate": 0.857},
      "cells": [
        {
          "workload": "compress", "scheme": "advanced",
          "width": 4, "scale": null,
          "key": "<cache key>", "cached": false, "source": "computed",
          "status": "ok", "attempts": 1,
          "seconds": 1.9,            # time this run spent on the cell
          "compute_seconds": 1.9,    # fresh pipeline time (from cache)
          "throughput_ips": 130000.0,  # simulated instructions / compute s
          "result": { ...BenchmarkResult... }
        }, ...
      ],
      "failures": [                  # cells that did not resolve cleanly
        {
          "workload": "m88ksim", "scheme": "advanced",
          "width": 4, "scale": null,
          "key": "<cache key>", "cached": false, "source": "none",
          "status": "failed",        # or "timeout"
          "attempts": 2,
          "seconds": 0.0, "compute_seconds": 0.0,
          "error": {"type": "PartitionError", "stage": "partition",
                    "message": "..."},
          "progress": {               # optional: last worker heartbeat
            "stage": "simulate", "cycles": 41200, "retired": 158000,
            "checkpoint_cycle": 40000, "checkpoint": true
          }
        }, ...
      ],
      "breakers": {                  # optional: circuit-breaker report
        "m88ksim/advanced": {"state": "open", "consecutive_failures": 3,
                             "threshold": 3, "skipped_cells": 1}, ...
      }
    }

Every numeric field of ``result`` is produced by the deterministic
pipeline, so two documents for the same code version must agree cell
for cell — that is what the CI baseline gate checks.  ``cells`` holds
only clean results; a failed cell moves to ``failures`` (with the
captured error instead of a result) so a partial run still yields a
valid, gateable document.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path

from repro.errors import ReproError
from repro.experiments.runner import BenchmarkResult
from repro.sim.stats import SimStats

#: Document schema identifier; bump on incompatible layout changes.
BENCH_SCHEMA = "repro-bench/1"

_RESULT_FIELDS = (
    "name",
    "scheme",
    "machine",
    "checksum",
    "dynamic_instructions",
    "offload_fraction",
    "cycles",
    "ipc",
    "static_instructions",
)


def result_to_dict(result: BenchmarkResult) -> dict:
    """Lossless, JSON-able form of a :class:`BenchmarkResult`."""
    doc = {field: getattr(result, field) for field in _RESULT_FIELDS}
    doc["partition_summary"] = dict(result.partition_summary)
    doc["mix"] = dict(result.mix)
    doc["stats"] = result.stats.to_counters()
    doc["degraded"] = result.degraded
    return doc


def result_from_dict(doc: dict) -> BenchmarkResult:
    """Inverse of :func:`result_to_dict`.

    ``degraded`` is optional so documents written before graceful
    degradation existed still load.
    """
    try:
        return BenchmarkResult(
            stats=SimStats.from_counters(doc["stats"]),
            partition_summary=dict(doc["partition_summary"]),
            mix=dict(doc["mix"]),
            degraded=bool(doc.get("degraded", False)),
            **{field: doc[field] for field in _RESULT_FIELDS},
        )
    except KeyError as exc:
        raise ReproError(f"malformed benchmark result: missing {exc}") from None


#: Host-identity fields the fingerprint is computed over, in order.
_HOST_FIELDS = ("platform", "machine", "python", "cpu_count")


def host_fingerprint(host: dict | None = None) -> str:
    """Stable identity hash of the machine a document was produced on.

    Wall-clock series are only comparable between runs on the same kind
    of host, so the perf-history detectors partition wall-time data by
    this fingerprint.  Accepts the ``host`` block of an existing BENCH
    document (older documents lack the stored ``fingerprint`` field and
    get it recomputed from the identity fields)."""
    base = {field: (host or host_info()).get(field) for field in _HOST_FIELDS}
    payload = json.dumps(base, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def host_info() -> dict:
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    info["fingerprint"] = host_fingerprint(info)
    return info


def outcome_cell_doc(outcome) -> dict:
    """JSON form of one :class:`~repro.bench.harness.CellOutcome` —
    the ``cells``/``failures`` entry layout, also used by the run
    journal so a resumed cell round-trips losslessly."""
    doc = {
        **outcome.cell.as_dict(),
        "key": outcome.key,
        "cached": outcome.cached,
        "source": outcome.source,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "seconds": outcome.seconds,
        "compute_seconds": outcome.compute_seconds,
    }
    if outcome.attempt_seconds:
        # per-attempt wall clock: intra-run repeat data the perf-history
        # noise-floor estimator (repro.perf.detect) derives thresholds from
        doc["attempt_seconds"] = [round(s, 6) for s in outcome.attempt_seconds]
    if outcome.ok and outcome.result is not None:
        compute = outcome.compute_seconds
        doc["throughput_ips"] = (
            outcome.result.dynamic_instructions / compute if compute > 0 else 0.0
        )
        doc["result"] = result_to_dict(outcome.result)
    else:
        error = outcome.error
        doc["error"] = (
            error.as_dict()
            if error is not None
            else {"type": "Unknown", "stage": "unknown", "message": ""}
        )
        if getattr(outcome, "progress", None):
            # last heartbeat of the failed worker: how far it got
            # (stage, instructions, cycles) and whether a resumable
            # checkpoint was published
            doc["progress"] = dict(outcome.progress)
    return doc


def build_document(
    suite: str,
    outcomes,
    *,
    jobs: int,
    total_seconds: float,
    cache_stats: dict | None = None,
    code_version: str | None = None,
    breakers: dict | None = None,
) -> dict:
    """Assemble the BENCH document from harness outcomes.

    Failed outcomes land in ``failures`` instead of ``cells``, so every
    surviving cell is byte-identical to what a fault-free run of the
    same code version would have produced.  ``breakers`` (from
    :class:`~repro.bench.harness.RunReport`) records per-family circuit
    breaker state; it is emitted only when non-empty so fault-free
    documents are unchanged.
    """
    from repro.bench.cache import code_fingerprint

    cells = [outcome_cell_doc(o) for o in outcomes if o.ok]
    failures = [outcome_cell_doc(o) for o in outcomes if not o.ok]
    hits = sum(1 for o in outcomes if o.cached)
    total = len(cells) + len(failures)
    doc = {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "created_unix": time.time(),
        "code_version": (
            code_version if code_version is not None else code_fingerprint()
        ),
        "host": host_info(),
        "jobs": jobs,
        "total_seconds": total_seconds,
        "cache": cache_stats
        or {
            "dir": None,
            "hits": hits,
            "misses": total - hits,
            "hit_rate": hits / total if total else 0.0,
        },
        "cells": cells,
        "failures": failures,
    }
    if breakers:
        doc["breakers"] = breakers
    return doc


_TOP_LEVEL_REQUIRED = (
    "schema",
    "suite",
    "created_unix",
    "code_version",
    "host",
    "jobs",
    "total_seconds",
    "cache",
    "cells",
)

_CELL_REQUIRED = (
    "workload",
    "scheme",
    "width",
    "key",
    "cached",
    "seconds",
    "compute_seconds",
    "throughput_ips",
    "result",
)

_RESULT_REQUIRED = _RESULT_FIELDS + ("partition_summary", "mix", "stats")

_FAILURE_REQUIRED = ("workload", "scheme", "width", "key", "status", "error")

_FAILURE_STATUSES = ("failed", "timeout")


def validate_document(doc: dict) -> None:
    """Raise :class:`ReproError` listing every schema violation.

    ``failures`` is optional (documents predating fault tolerance lack
    it) but validated when present; ``cells`` may be empty only when
    every cell of the run failed.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise ReproError("bench document must be a JSON object")
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    for field in _TOP_LEVEL_REQUIRED:
        if field not in doc:
            problems.append(f"missing top-level field {field!r}")
    failures = doc.get("failures", [])
    if not isinstance(failures, list):
        problems.append("failures must be a list")
        failures = []
    cells = doc.get("cells")
    if not isinstance(cells, list) or (not cells and not failures):
        problems.append("cells must be a non-empty list")
        cells = cells if isinstance(cells, list) else []
    for index, cell in enumerate(cells):
        where = f"cells[{index}]"
        if not isinstance(cell, dict):
            problems.append(f"{where} must be an object")
            continue
        for field in _CELL_REQUIRED:
            if field not in cell:
                problems.append(f"{where} missing {field!r}")
        if cell.get("status", "ok") != "ok":
            problems.append(f"{where}.status must be 'ok', not {cell.get('status')!r}")
        result = cell.get("result")
        if not isinstance(result, dict):
            problems.append(f"{where}.result must be an object")
            continue
        for field in _RESULT_REQUIRED:
            if field not in result:
                problems.append(f"{where}.result missing {field!r}")
        if isinstance(result.get("cycles"), (int, float)) and result["cycles"] <= 0:
            problems.append(f"{where}.result.cycles must be positive")
    for index, failure in enumerate(failures):
        where = f"failures[{index}]"
        if not isinstance(failure, dict):
            problems.append(f"{where} must be an object")
            continue
        for field in _FAILURE_REQUIRED:
            if field not in failure:
                problems.append(f"{where} missing {field!r}")
        if failure.get("status") not in _FAILURE_STATUSES:
            problems.append(
                f"{where}.status must be one of {_FAILURE_STATUSES}, "
                f"not {failure.get('status')!r}"
            )
        error = failure.get("error")
        if error is not None and not isinstance(error, dict):
            problems.append(f"{where}.error must be an object")
        progress = failure.get("progress")
        if progress is not None and not isinstance(progress, dict):
            problems.append(f"{where}.progress must be an object")
    breakers = doc.get("breakers")
    if breakers is not None:
        if not isinstance(breakers, dict):
            problems.append("breakers must be an object")
        else:
            for family, state in breakers.items():
                if not isinstance(state, dict):
                    problems.append(f"breakers[{family!r}] must be an object")
    if problems:
        raise ReproError(
            "invalid bench document:\n  " + "\n  ".join(problems)
        )


def load_document(path: str | os.PathLike) -> dict:
    """Read and parse a BENCH JSON file (no validation)."""
    try:
        with open(Path(path), encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read bench document {path}: {exc}") from None


def save_document(doc: dict, path: str | os.PathLike) -> None:
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
