"""Parallel, cached, fault-tolerant execution of experiment-matrix cells.

Resolution order for each cell:

1. the in-process memo (shared by every figure/table driver of one
   invocation, replacing the old ``runner._CACHE``),
2. the on-disk :class:`~repro.bench.cache.ResultCache` (if given),
3. fresh computation — inline for ``jobs <= 1``, otherwise fanned out
   over a :class:`concurrent.futures.ProcessPoolExecutor`.

Workers return plain dicts (the same serialization the cache stores),
so a parallel run, a serial run and a cache replay all yield
bit-identical result documents — the property the harness tests and
the CI baseline gate rely on.

Fault tolerance (``docs/robustness.md``): one misbehaving cell never
discards its siblings' work.  Every cell resolves to a
:class:`CellOutcome` whose ``status`` is ``ok``, ``failed`` or
``timeout``; pipeline exceptions are captured as a :class:`CellError`
(type/stage/message) instead of propagating out of ``run_cells``.
Failures retry up to ``retries`` times with jittered exponential
backoff; a worker that dies outright (``BrokenProcessPool``) triggers
a pool respawn, with every in-flight cell requeued, and after repeated
breakages the harness drops to single-worker isolation so the poisoned
cell is identified, charged and excluded without taking innocents with
it.  Callers that need the old raise-on-failure behaviour use
:meth:`CellOutcome.unwrap`.

Supervision: workers emit heartbeats (:mod:`repro.bench.heartbeat`) —
pipeline stage, instructions executed, cycles simulated, checkpoints
published — and the per-cell ``timeout`` is a *progress-aware* watchdog
rather than a blind wall-clock kill: a cell whose heartbeat changed
gets its deadline extended (bounded by ``hard_timeout``), one whose
heartbeat did not change is killed at the deadline.  Failed and
timed-out outcomes carry the last heartbeat as ``progress`` so a
99%-done timeout is distinguishable from a cold hang.  A per-
``(workload, scheme)`` circuit breaker (``breaker_threshold``) trips
after K consecutive attempt failures, failing the family's remaining
cells fast so one poisoned workload cannot burn the whole sweep's
retry budget.
"""

from __future__ import annotations

import hashlib
import os
import random
import shutil
import tempfile
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.cache import ResultCache, cell_key
from repro.bench.heartbeat import HeartbeatWriter, progress_summary, read_heartbeat
from repro.bench.matrix import Cell
from repro.bench.results import result_from_dict, result_to_dict
from repro.errors import ReproError, error_stage
from repro.experiments.runner import BenchmarkResult, run_benchmark
from repro.progress import set_progress_sink

#: key -> (result, fresh compute seconds); one process-wide memo in LRU
#: order, bounded by :func:`_memo_cap` so long-lived processes using
#: ``cached_run_benchmark`` cannot grow without limit.  Guarded by
#: ``_MEMO_LOCK``: the ``repro serve`` daemon resolves cells from many
#: worker threads against this one memo.
_MEMO: OrderedDict[str, tuple[BenchmarkResult, float]] = OrderedDict()
_MEMO_LOCK = threading.Lock()


def _after_fork_reinit() -> None:
    # pool workers fork from a possibly multi-threaded parent (the serve
    # daemon); a memo lock captured mid-acquisition must not survive
    global _MEMO_LOCK
    _MEMO_LOCK = threading.Lock()


os.register_at_fork(after_in_child=_after_fork_reinit)

#: Default memo bound; override with ``REPRO_BENCH_MEMO_CAP=<n>``.
DEFAULT_MEMO_CAP = 512

#: After this many pool breakages, fall back to one worker at a time so
#: a crash attributes to exactly one cell.
_ISOLATE_AFTER_BREAKS = 2

#: Cap on one exponential-backoff sleep, seconds.
_MAX_BACKOFF = 30.0

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


def _memo_cap() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_MEMO_CAP", DEFAULT_MEMO_CAP)))
    except (TypeError, ValueError):
        return DEFAULT_MEMO_CAP


def _memo_get(key: str) -> tuple[BenchmarkResult, float] | None:
    with _MEMO_LOCK:
        value = _MEMO.get(key)
        if value is not None:
            _MEMO.move_to_end(key)
        return value


def _memo_put(key: str, value: tuple[BenchmarkResult, float]) -> None:
    cap = _memo_cap()
    with _MEMO_LOCK:
        _MEMO[key] = value
        _MEMO.move_to_end(key)
        while len(_MEMO) > cap:
            _MEMO.popitem(last=False)


def clear_memo() -> None:
    """Drop the in-process memo (tests and long-lived processes)."""
    with _MEMO_LOCK:
        _MEMO.clear()


@dataclass(frozen=True, slots=True)
class CellError:
    """What failed inside one cell, reduced to picklable strings.

    Attributes:
        type: Exception class name (or ``BrokenProcessPool``/``Timeout``
            for process-level failures the cell never got to raise).
        stage: Pipeline stage the failure is attributed to.
        message: The exception text.
    """

    type: str
    stage: str
    message: str

    @classmethod
    def from_exception(cls, exc: BaseException) -> "CellError":
        return cls(type(exc).__name__, error_stage(exc), str(exc))

    def as_dict(self) -> dict:
        return {"type": self.type, "stage": self.stage, "message": self.message}

    @classmethod
    def from_dict(cls, doc: dict) -> "CellError":
        return cls(
            str(doc.get("type", "Exception")),
            str(doc.get("stage", "unknown")),
            str(doc.get("message", "")),
        )


@dataclass(eq=False, slots=True)
class CellOutcome:
    """One resolved cell.

    Attributes:
        cell: The matrix cell.
        result: The (possibly replayed) benchmark result; ``None`` when
            the cell did not resolve cleanly (``status != "ok"``).
        key: Content-address of the cell (cache key).
        cached: True when the result was replayed, not computed.
        source: ``"memo"``, ``"disk"``, ``"computed"``, ``"journal"``
            (resumed from a run journal) or ``"none"`` (failed).
        seconds: Wall-clock this invocation spent obtaining the cell
            (≈0 for replays).
        compute_seconds: Wall-clock of the original fresh computation.
        status: ``"ok"``, ``"failed"`` or ``"timeout"``.
        error: Captured failure details when ``status != "ok"``.
        attempts: Number of attempts spent on the cell (1 = first try).
        progress: Last heartbeat of a failed/timed-out cell (stage,
            instructions executed, cycles simulated, whether a resumable
            checkpoint was published) — ``None`` for clean cells or when
            the worker never reported.
        attempt_seconds: Wall-clock seconds of every attempt spent on
            this cell, in attempt order (failed attempts included).
            ``None`` for replays.  Retried cells therefore carry
            intra-run repeat timings — the raw material of the
            perf-history noise-floor estimator (:mod:`repro.perf`).
    """

    cell: Cell
    result: BenchmarkResult | None
    key: str
    cached: bool
    source: str
    seconds: float
    compute_seconds: float
    status: str = STATUS_OK
    error: CellError | None = None
    attempts: int = 1
    progress: dict | None = None
    attempt_seconds: list[float] | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def unwrap(self) -> BenchmarkResult:
        """The result, or a :class:`ReproError` re-raising the failure."""
        if self.ok and self.result is not None:
            return self.result
        error = self.error or CellError("Unknown", "unknown", "no result")
        raise ReproError(
            f"cell {self.cell.label} {self.status} after "
            f"{self.attempts} attempt(s): [{error.type} at {error.stage}] "
            f"{error.message}"
        )


def compute_cell(cell: Cell) -> tuple[BenchmarkResult, float]:
    """Run one cell's full pipeline; returns (result, seconds)."""
    start = time.perf_counter()
    result = run_benchmark(
        cell.workload, cell.scheme, width=cell.width, scale=cell.scale
    )
    return result, time.perf_counter() - start


def _pool_worker(payload: tuple[str, dict, str | None]) -> tuple[str, dict]:
    """Process-pool entry point (must stay module-level picklable).

    Exceptions are captured into the returned payload rather than
    raised: a raised exception would have to survive pickling back to
    the parent, and the parent wants type/stage strings anyway.  While
    the cell runs, the pipeline's progress reports stream into the
    heartbeat file at ``hb_path`` so the parent's watchdog can tell a
    slow-but-progressing cell from a hung one; the final flush makes
    the last beat visible even when the cell fails.
    """
    key, cell_doc, hb_path = payload
    heartbeat = HeartbeatWriter(hb_path)
    set_progress_sink(heartbeat)
    start = time.perf_counter()
    try:
        result, seconds = compute_cell(Cell.from_dict(cell_doc))
    except Exception as exc:
        return key, {
            "ok": False,
            "error": CellError.from_exception(exc).as_dict(),
            "seconds": time.perf_counter() - start,
        }
    finally:
        set_progress_sink(None)
        heartbeat.flush()
    return key, {"ok": True, "result": result_to_dict(result), "seconds": seconds}


def _decode_cache_entry(entry: dict) -> tuple[BenchmarkResult, float] | None:
    """Decode a disk entry defensively; ``None`` = treat as a miss.

    A corrupted entry (torn write survived the JSON parse, bit rot, a
    stale schema) must cost a recomputation, never a crash.
    """
    try:
        result = result_from_dict(entry["result"])
        compute_seconds = float(entry.get("compute_seconds", 0.0))
    except (ReproError, KeyError, TypeError, ValueError):
        return None
    return result, compute_seconds


def _backoff_delay(
    attempt: int, backoff: float, rng: random.Random | None = None
) -> float:
    """Exponential backoff with ±25% jitter.

    Without jitter, cells failing together (a shared dependency
    hiccup, a pool respawn) retry together — a stampede that re-creates
    the very contention that failed them.  The jitter is drawn from the
    caller's seeded ``rng`` so a run's retry schedule is reproducible.
    """
    if backoff <= 0:
        return 0.0
    delay = min(backoff * (2 ** (attempt - 1)), _MAX_BACKOFF)
    if rng is not None:
        delay *= 0.75 + 0.5 * rng.random()
    return delay


def _pause(stop: threading.Event | None, seconds: float) -> None:
    """Sleep that a caller's ``stop`` event can cut short.

    Backoff sleeps are where a Ctrl-C'd run used to linger; waiting on
    the event instead of ``time.sleep`` makes shutdown prompt.
    """
    if seconds <= 0:
        return
    if stop is not None:
        stop.wait(seconds)
    else:
        time.sleep(seconds)


def _family(cell: Cell) -> str:
    """Circuit-breaker grouping: one breaker per (workload, scheme).

    Width/scale variants of a workload share the compile + partition +
    interpret pipeline, so a deterministic failure in one almost always
    afflicts the whole family — that is the unit worth failing fast.
    """
    return f"{cell.workload}/{cell.scheme}"


class CircuitBreaker:
    """Consecutive-failure breaker over cell families.

    A family whose cells fail ``threshold`` *consecutive* attempts is
    deterministically broken — more retries only burn the sweep's wall
    clock.  Once open, queued cells of the family fail fast (type
    ``CircuitOpen``, zero attempts charged); any success resets the
    family's count.  ``threshold <= 0`` disables the breaker.

    Thread-safe: ``repro serve`` shares one breaker across every client
    (pass it to :func:`run_cells` as ``breaker``), so a workload that is
    deterministically poisoning workers fails fast for *all* clients,
    not once per connection.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.failures: dict[str, int] = {}
        self.skipped: dict[str, int] = {}
        self._lock = threading.Lock()

    def record_failure(self, family: str) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            self.failures[family] = self.failures.get(family, 0) + 1

    def record_success(self, family: str) -> None:
        with self._lock:
            if family in self.failures:
                self.failures[family] = 0

    def is_open(self, family: str) -> bool:
        if self.threshold <= 0:
            return False
        with self._lock:
            return self.failures.get(family, 0) >= self.threshold

    def skip(self, family: str) -> CellError:
        with self._lock:
            self.skipped[family] = self.skipped.get(family, 0) + 1
            count = self.failures.get(family, 0)
        return CellError(
            "CircuitOpen",
            "harness",
            f"circuit breaker open for {family} after "
            f"{count} consecutive failures",
        )

    def snapshot(self) -> dict[str, dict]:
        """Per-family breaker state for the run report (tracked families
        only — a family that never failed has nothing to report)."""
        report: dict[str, dict] = {}
        with self._lock:
            failures = dict(self.failures)
            skipped = dict(self.skipped)
        for family, count in sorted(failures.items()):
            if count == 0 and not skipped.get(family):
                continue
            report[family] = {
                "state": "open" if count >= self.threshold > 0 else "closed",
                "consecutive_failures": count,
                "threshold": self.threshold,
                "skipped_cells": skipped.get(family, 0),
            }
        return report


@dataclass(eq=False, slots=True)
class RunReport:
    """Supervision facts a caller wants alongside the outcomes.

    Pass an instance to :func:`run_cells`; it is filled in place.
    """

    #: family -> breaker state, for families that recorded any failure.
    breakers: dict[str, dict] = field(default_factory=dict)
    #: True when a ``stop`` event aborted the run before completion.
    aborted: bool = False


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, terminating hung or wedged workers."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_cells(
    cells: list[Cell],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    progress: Callable[[CellOutcome], None] | None = None,
    timeout: float | None = None,
    hard_timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
    breaker_threshold: int = 0,
    breaker: CircuitBreaker | None = None,
    stop: threading.Event | None = None,
    report: RunReport | None = None,
) -> list[CellOutcome]:
    """Resolve every cell; returns outcomes in input order (deduplicated).

    Never raises for a cell's failure — inspect ``CellOutcome.status``
    (or call ``unwrap()``) instead.

    Args:
        cells: Cells to run; duplicates are resolved once.
        jobs: Worker processes (<=1 runs inline in this process, unless
            ``timeout`` is set, which requires the pool for isolation).
        cache: Optional on-disk cache consulted before computing and
            updated (atomically) after.
        force: Recompute even on a cache hit (the cache is rewritten).
        progress: Callback invoked as each cell resolves, in completion
            order.
        timeout: Per-cell *soft* deadline in seconds.  A cell whose
            heartbeat changed since the last watchdog look gets the
            deadline extended by another ``timeout``; a cell with no
            heartbeat change is killed (pool respawn) and retried or
            marked ``timeout``.
        hard_timeout: Absolute per-cell wall-clock ceiling; a cell is
            killed at this point even while still making progress.
            ``None`` means progressing cells run for as long as they
            keep beating.
        retries: Extra attempts per cell after the first failure.
        backoff: Base of the exponential retry delay
            (``backoff * 2**(attempt-1)`` seconds ±25% jitter, capped).
        breaker_threshold: Consecutive attempt failures per
            (workload, scheme) family before its circuit breaker opens
            and remaining family cells fail fast; ``0`` disables.
        breaker: Optional externally owned :class:`CircuitBreaker` to
            use instead of a per-call one, so failure counts persist
            across calls — the ``repro serve`` daemon passes one breaker
            for every request, making breaker state a property of the
            process, not the connection.  ``breaker_threshold`` is
            ignored when this is given.
        stop: Optional event; once set, no new work starts, backoff
            sleeps return immediately and unresolved cells are recorded
            as failed (type ``Aborted``).
        report: Optional :class:`RunReport` filled in place with breaker
            state and abort status.
    """
    ordered: list[tuple[Cell, str]] = []
    seen: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        if key not in seen:
            seen.add(key)
            ordered.append((cell, key))

    outcomes: dict[str, CellOutcome] = {}
    pending: list[tuple[Cell, str]] = []
    max_attempts = max(1, retries + 1)
    # key -> wall seconds of every attempt, in attempt order.  Surfaced
    # on the outcome (and thence the BENCH document) as the intra-run
    # repeat data the perf-history noise-floor estimator consumes.
    attempt_times: dict[str, list[float]] = {}

    def _resolved(outcome: CellOutcome) -> None:
        outcomes[outcome.key] = outcome
        if progress is not None:
            progress(outcome)

    def _record_attempt(key: str, seconds: float) -> None:
        attempt_times.setdefault(key, []).append(max(0.0, seconds))

    for cell, key in ordered:
        if not force:
            memoized = _memo_get(key)
            if memoized is not None:
                result, compute_seconds = memoized
                _resolved(
                    CellOutcome(cell, result, key, True, "memo", 0.0, compute_seconds)
                )
                continue
        if not force and cache is not None:
            start = time.perf_counter()
            entry = cache.get(key)
            decoded = _decode_cache_entry(entry) if entry is not None else None
            if decoded is not None:
                result, compute_seconds = decoded
                _memo_put(key, (result, compute_seconds))
                _resolved(
                    CellOutcome(
                        cell,
                        result,
                        key,
                        True,
                        "disk",
                        time.perf_counter() - start,
                        compute_seconds,
                    )
                )
                continue
        pending.append((cell, key))

    # All machine configs of one (workload, scheme, scale) share a packed
    # trace, so group them: the capture from the first config is still in
    # the replay pool (or freshly on disk) when its siblings run.
    # Outcomes are returned in input order regardless.
    pending.sort(
        key=lambda item: (
            item[0].workload,
            item[0].scheme,
            -1 if item[0].scale is None else item[0].scale,
            item[0].width,
        )
    )

    def _computed(
        cell: Cell,
        key: str,
        result: BenchmarkResult,
        seconds: float,
        attempts: int = 1,
    ) -> None:
        _memo_put(key, (result, seconds))
        if cache is not None:
            cache.put(
                key,
                {
                    "cell": cell.as_dict(),
                    "result": result_to_dict(result),
                    "compute_seconds": seconds,
                },
            )
        _resolved(
            CellOutcome(
                cell, result, key, False, "computed", seconds, seconds,
                STATUS_OK, None, attempts, None, attempt_times.get(key),
            )
        )

    def _failed(
        cell: Cell,
        key: str,
        status: str,
        error: CellError,
        attempts: int,
        progress_doc: dict | None = None,
    ) -> None:
        _resolved(
            CellOutcome(
                cell, None, key, False, "none", 0.0, 0.0, status, error,
                attempts, progress_doc, attempt_times.get(key),
            )
        )

    # The retry-jitter RNG is seeded from the pending work itself so a
    # rerun of the same sweep reproduces the same backoff schedule.
    seed_bytes = hashlib.sha256(
        "\n".join(key for _, key in pending).encode("utf-8")
    ).digest()
    rng = random.Random(int.from_bytes(seed_bytes[:8], "big"))
    if breaker is None:
        breaker = CircuitBreaker(breaker_threshold)

    if pending and timeout is None and (jobs <= 1 or len(pending) == 1):
        _run_serial(
            pending, max_attempts, backoff, rng, breaker, stop,
            _computed, _failed, _record_attempt,
        )
    elif pending:
        _run_pool(
            pending, jobs, timeout, hard_timeout, max_attempts, backoff,
            rng, breaker, stop, _computed, _failed, _record_attempt,
        )

    # A stop-event abort leaves cells unresolved; record them so every
    # input cell still maps to an outcome.
    aborted = False
    for cell, key in ordered:
        if key not in outcomes:
            aborted = True
            _failed(
                cell, key, STATUS_FAILED,
                CellError("Aborted", "harness", "run stopped before this cell resolved"),
                0,
            )
    if report is not None:
        report.breakers = breaker.snapshot()
        report.aborted = aborted

    return [outcomes[key] for _, key in ordered]


def _run_serial(
    pending: list[tuple[Cell, str]],
    max_attempts: int,
    backoff: float,
    rng: random.Random,
    breaker: CircuitBreaker,
    stop: threading.Event | None,
    _computed: Callable,
    _failed: Callable,
    _record_attempt: Callable[[str, float], None],
) -> None:
    """Inline execution with the same retry/error-capture semantics.

    In-process execution cannot survive a worker crash or enforce a
    wall-clock timeout — callers needing those guarantees set
    ``timeout`` or ``jobs > 1`` to get process isolation.  A memory-only
    :class:`HeartbeatWriter` still collects progress so failed outcomes
    carry the same ``progress`` doc as pooled ones.
    """
    for cell, key in pending:
        if stop is not None and stop.is_set():
            return
        family = _family(cell)
        if breaker.is_open(family):
            _failed(cell, key, STATUS_FAILED, breaker.skip(family), 0)
            continue
        for attempt in range(1, max_attempts + 1):
            heartbeat = HeartbeatWriter(None)
            set_progress_sink(heartbeat)
            attempt_start = time.perf_counter()
            try:
                result, seconds = compute_cell(cell)
            except Exception as exc:
                _record_attempt(key, time.perf_counter() - attempt_start)
                breaker.record_failure(family)
                if attempt < max_attempts and not breaker.is_open(family):
                    _pause(stop, _backoff_delay(attempt, backoff, rng))
                    if stop is not None and stop.is_set():
                        return
                    continue
                _failed(
                    cell, key, STATUS_FAILED,
                    CellError.from_exception(exc), attempt,
                    progress_summary(heartbeat.fields),
                )
            else:
                _record_attempt(key, seconds)
                breaker.record_success(family)
                # normalize through the dict round trip so serial results
                # are representationally identical to pooled/cached ones
                _computed(
                    cell, key,
                    result_from_dict(result_to_dict(result)),
                    seconds, attempt,
                )
            finally:
                set_progress_sink(None)
            break


@dataclass(eq=False, slots=True)
class _Flight:
    """One submitted attempt and its watchdog state."""

    cell: Cell
    key: str
    attempt: int
    #: Watchdog deadline; extended on heartbeat change. ``None`` = no timeout.
    soft_deadline: float | None
    #: Absolute ceiling (submit + hard_timeout); never extended.
    hard_deadline: float | None
    hb_path: str
    #: ``time.monotonic()`` at submission — attempt wall clock for
    #: failure paths where the worker never reported a duration.
    submitted: float = 0.0
    #: Raw bytes of the heartbeat at the last watchdog look.
    last_sig: bytes | None = None


def _run_pool(
    pending: list[tuple[Cell, str]],
    jobs: int,
    timeout: float | None,
    hard_timeout: float | None,
    max_attempts: int,
    backoff: float,
    rng: random.Random,
    breaker: CircuitBreaker,
    stop: threading.Event | None,
    _computed: Callable,
    _failed: Callable,
    _record_attempt: Callable[[str, float], None],
) -> None:
    """Fan out over a worker pool, surviving crashes, hangs and errors.

    Submission is throttled to the worker count so a task's submit time
    approximates its start time, making per-cell deadlines meaningful.
    Each flight gets a private heartbeat file; the watchdog extends a
    flight's soft deadline whenever the file's bytes changed since the
    last look, so ``timeout`` bounds *stall time*, not total runtime
    (``hard_timeout`` bounds that).
    """
    # (cell, key, attempt, not_before): ready-to-run work items
    queue: deque[tuple[Cell, str, int, float]] = deque(
        (cell, key, 1, 0.0) for cell, key in pending
    )
    workers_limit = max(1, min(jobs, len(pending)))
    pool: ProcessPoolExecutor | None = None
    pool_breaks = 0
    inflight: dict[object, _Flight] = {}
    # REPRO_HB_DIR pins the heartbeat directory to a known location and
    # keeps it after the run, so CI can upload the beats of a failed
    # sweep as an artifact; unset, heartbeats live in a private temp dir
    # removed on exit.
    hb_root = os.environ.get("REPRO_HB_DIR") or None
    if hb_root:
        os.makedirs(hb_root, exist_ok=True)
    hb_dir = tempfile.mkdtemp(prefix="repro-hb-", dir=hb_root)
    hb_counter = 0

    def _flight_progress(flight: _Flight) -> dict | None:
        _sig, fields = read_heartbeat(flight.hb_path)
        return progress_summary(fields)

    def _requeue(
        flight: _Flight, error: CellError, status: str,
        progress_doc: dict | None = None,
    ) -> None:
        """Retry a failed attempt or record the final failure.

        Every charged failure feeds the family's circuit breaker; once
        it opens, remaining retries are pointless and the cell records
        its real error immediately.
        """
        family = _family(flight.cell)
        breaker.record_failure(family)
        if flight.attempt < max_attempts and not breaker.is_open(family):
            queue.append(
                (flight.cell, flight.key, flight.attempt + 1,
                 time.monotonic() + _backoff_delay(flight.attempt, backoff, rng))
            )
        else:
            _failed(
                flight.cell, flight.key, status, error, flight.attempt,
                progress_doc,
            )

    def _handle_break() -> None:
        """The pool died under us: every in-flight cell is a suspect.

        A ``BrokenProcessPool`` carries no attribution, so a cell is
        only *charged* an attempt when it was the lone in-flight cell
        (then the dead worker must have been running it).  Ambiguous
        breaks requeue every suspect uncharged; repeated breaks drop to
        single-worker isolation, where the next break attributes — and
        charges — exactly one cell.  Innocent siblings of a crashing
        cell therefore never exhaust their attempts by association.
        """
        nonlocal pool, pool_breaks
        pool_breaks += 1
        suspects = list(inflight.values())
        inflight.clear()
        if pool is not None:
            _kill_pool(pool)
            pool = None
        if len(suspects) == 1:
            flight = suspects[0]
            _record_attempt(flight.key, time.monotonic() - flight.submitted)
            _requeue(
                flight,
                CellError(
                    "BrokenProcessPool", "worker",
                    "worker process died before returning a result",
                ),
                STATUS_FAILED,
                _flight_progress(flight),
            )
        else:
            for flight in suspects:
                queue.append(
                    (flight.cell, flight.key, flight.attempt,
                     time.monotonic() + _backoff_delay(1, backoff, rng))
                )

    clean_exit = False
    try:
        while queue or inflight:
            if stop is not None and stop.is_set():
                return
            # isolation mode: after repeated breakages, run one cell at a
            # time so the next crash attributes to exactly one cell
            workers = 1 if pool_breaks >= _ISOLATE_AFTER_BREAKS else workers_limit
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)

            now = time.monotonic()
            while queue and len(inflight) < workers:
                for _ in range(len(queue)):
                    if queue[0][3] <= now:
                        break
                    queue.rotate(-1)
                else:
                    break  # everything queued is still backing off
                cell, key, attempt, _not_before = queue.popleft()
                family = _family(cell)
                if breaker.is_open(family):
                    # fail fast; attempt - 1 attempts were actually spent
                    _failed(
                        cell, key, STATUS_FAILED, breaker.skip(family),
                        attempt - 1,
                    )
                    continue
                hb_counter += 1
                hb_path = os.path.join(hb_dir, f"{hb_counter}.hb")
                try:
                    future = pool.submit(_pool_worker, (key, cell.as_dict(), hb_path))
                except BrokenProcessPool:
                    queue.appendleft((cell, key, attempt, 0.0))
                    _handle_break()
                    break
                inflight[future] = _Flight(
                    cell, key, attempt,
                    None if timeout is None else now + timeout,
                    None if hard_timeout is None else now + hard_timeout,
                    hb_path,
                    submitted=now,
                )
            if pool is None:
                continue  # pool broke during submission; respawn and retry

            if not inflight:
                if not queue:
                    break  # breaker fail-fasts emptied the queue
                soonest = min(item[3] for item in queue)
                _pause(stop, max(0.0, soonest - time.monotonic()) + 0.005)
                continue

            now = time.monotonic()
            wakeups = [
                flight.soft_deadline
                for flight in inflight.values()
                if flight.soft_deadline is not None
            ]
            wakeups.extend(item[3] for item in queue if item[3] > now)
            wait_timeout = (
                max(0.0, min(wakeups) - now) + 0.01 if wakeups else None
            )
            if stop is not None:
                # poll the stop event even while blocked on slow workers
                wait_timeout = 0.5 if wait_timeout is None else min(wait_timeout, 0.5)
            done, _ = wait(
                set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )

            broken = False
            for future in done:
                flight = inflight.pop(future)
                try:
                    _, payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    inflight[future] = flight
                    continue
                except Exception as exc:
                    # e.g. the payload failed to unpickle; a cell-level
                    # failure, not a pool-level one
                    payload = {
                        "ok": False,
                        "error": CellError.from_exception(exc).as_dict(),
                    }
                _record_attempt(
                    flight.key,
                    float(
                        payload.get(
                            "seconds", time.monotonic() - flight.submitted
                        )
                    ),
                )
                if payload["ok"]:
                    breaker.record_success(_family(flight.cell))
                    _computed(
                        flight.cell, flight.key,
                        result_from_dict(payload["result"]),
                        payload["seconds"], flight.attempt,
                    )
                else:
                    _requeue(
                        flight,
                        CellError.from_dict(payload["error"]), STATUS_FAILED,
                        _flight_progress(flight),
                    )
            if broken:
                _handle_break()
                continue

            if timeout is not None:
                now = time.monotonic()
                expired: list[tuple[object, dict, bool]] = []
                for future, flight in inflight.items():
                    if flight.soft_deadline is None or now < flight.soft_deadline:
                        continue
                    sig, fields = read_heartbeat(flight.hb_path)
                    progressing = sig != flight.last_sig
                    within_ceiling = (
                        flight.hard_deadline is None or now < flight.hard_deadline
                    )
                    if progressing and within_ceiling:
                        # the cell moved since the last look: extend the
                        # watchdog, bounded by the hard ceiling
                        flight.last_sig = sig
                        flight.soft_deadline = now + timeout
                        if flight.hard_deadline is not None:
                            flight.soft_deadline = min(
                                flight.soft_deadline, flight.hard_deadline
                            )
                        continue
                    expired.append((future, fields, progressing))
                if expired:
                    for future, fields, progressing in expired:
                        flight = inflight.pop(future)
                        _record_attempt(
                            flight.key, time.monotonic() - flight.submitted
                        )
                        stage = str(fields.get("stage", "unknown"))
                        if progressing:
                            message = (
                                f"cell exceeded the {hard_timeout:g}s hard "
                                "wall-clock ceiling while still progressing"
                            )
                        else:
                            message = (
                                f"cell exceeded {timeout:g}s wall clock "
                                "without heartbeat progress"
                            )
                        _requeue(
                            flight,
                            CellError("Timeout", stage, message),
                            STATUS_TIMEOUT,
                            progress_summary(fields),
                        )
                    # the hung workers still occupy pool slots: kill the
                    # pool and restart the interrupted (innocent) cells
                    # without charging them an attempt
                    for flight in inflight.values():
                        queue.appendleft((flight.cell, flight.key, flight.attempt, 0.0))
                    inflight.clear()
                    _kill_pool(pool)
                    pool = None
        clean_exit = True
    finally:
        if pool is not None:
            if clean_exit:
                pool.shutdown(wait=True, cancel_futures=True)
            else:
                # abnormal exit (stop event, KeyboardInterrupt, internal
                # error): waiting on possibly-hung workers would wedge
                # shutdown, so terminate them
                _kill_pool(pool)
        if not hb_root:
            shutil.rmtree(hb_dir, ignore_errors=True)


def results_by_cell(outcomes: list[CellOutcome]) -> dict[Cell, BenchmarkResult]:
    """Convenience lookup table for the figure/table drivers.

    Raises on any failed outcome: the drivers need every cell, and a
    silent hole in the table would surface as a confusing ``KeyError``
    far from the cause.
    """
    return {outcome.cell: outcome.unwrap() for outcome in outcomes}
