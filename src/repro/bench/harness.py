"""Parallel, cached, fault-tolerant execution of experiment-matrix cells.

Resolution order for each cell:

1. the in-process memo (shared by every figure/table driver of one
   invocation, replacing the old ``runner._CACHE``),
2. the on-disk :class:`~repro.bench.cache.ResultCache` (if given),
3. fresh computation — inline for ``jobs <= 1``, otherwise fanned out
   over a :class:`concurrent.futures.ProcessPoolExecutor`.

Workers return plain dicts (the same serialization the cache stores),
so a parallel run, a serial run and a cache replay all yield
bit-identical result documents — the property the harness tests and
the CI baseline gate rely on.

Fault tolerance (``docs/robustness.md``): one misbehaving cell never
discards its siblings' work.  Every cell resolves to a
:class:`CellOutcome` whose ``status`` is ``ok``, ``failed`` or
``timeout``; pipeline exceptions are captured as a :class:`CellError`
(type/stage/message) instead of propagating out of ``run_cells``.
Failures retry up to ``retries`` times with exponential backoff; a
cell that exceeds its wall-clock ``timeout`` has its (possibly hung)
worker pool killed and respawned; a worker that dies outright
(``BrokenProcessPool``) triggers a pool respawn, with every in-flight
cell requeued, and after repeated breakages the harness drops to
single-worker isolation so the poisoned cell is identified, charged
and excluded without taking innocents with it.
Callers that need the old raise-on-failure behaviour use
:meth:`CellOutcome.unwrap`.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro.bench.cache import ResultCache, cell_key
from repro.bench.matrix import Cell
from repro.bench.results import result_from_dict, result_to_dict
from repro.errors import ReproError, error_stage
from repro.experiments.runner import BenchmarkResult, run_benchmark

#: key -> (result, fresh compute seconds); one process-wide memo in LRU
#: order, bounded by :func:`_memo_cap` so long-lived processes using
#: ``cached_run_benchmark`` cannot grow without limit.
_MEMO: OrderedDict[str, tuple[BenchmarkResult, float]] = OrderedDict()

#: Default memo bound; override with ``REPRO_BENCH_MEMO_CAP=<n>``.
DEFAULT_MEMO_CAP = 512

#: After this many pool breakages, fall back to one worker at a time so
#: a crash attributes to exactly one cell.
_ISOLATE_AFTER_BREAKS = 2

#: Cap on one exponential-backoff sleep, seconds.
_MAX_BACKOFF = 30.0

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


def _memo_cap() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_MEMO_CAP", DEFAULT_MEMO_CAP)))
    except (TypeError, ValueError):
        return DEFAULT_MEMO_CAP


def _memo_get(key: str) -> tuple[BenchmarkResult, float] | None:
    value = _MEMO.get(key)
    if value is not None:
        _MEMO.move_to_end(key)
    return value


def _memo_put(key: str, value: tuple[BenchmarkResult, float]) -> None:
    _MEMO[key] = value
    _MEMO.move_to_end(key)
    cap = _memo_cap()
    while len(_MEMO) > cap:
        _MEMO.popitem(last=False)


def clear_memo() -> None:
    """Drop the in-process memo (tests and long-lived processes)."""
    _MEMO.clear()


@dataclass(frozen=True, slots=True)
class CellError:
    """What failed inside one cell, reduced to picklable strings.

    Attributes:
        type: Exception class name (or ``BrokenProcessPool``/``Timeout``
            for process-level failures the cell never got to raise).
        stage: Pipeline stage the failure is attributed to.
        message: The exception text.
    """

    type: str
    stage: str
    message: str

    @classmethod
    def from_exception(cls, exc: BaseException) -> "CellError":
        return cls(type(exc).__name__, error_stage(exc), str(exc))

    def as_dict(self) -> dict:
        return {"type": self.type, "stage": self.stage, "message": self.message}

    @classmethod
    def from_dict(cls, doc: dict) -> "CellError":
        return cls(
            str(doc.get("type", "Exception")),
            str(doc.get("stage", "unknown")),
            str(doc.get("message", "")),
        )


@dataclass(eq=False, slots=True)
class CellOutcome:
    """One resolved cell.

    Attributes:
        cell: The matrix cell.
        result: The (possibly replayed) benchmark result; ``None`` when
            the cell did not resolve cleanly (``status != "ok"``).
        key: Content-address of the cell (cache key).
        cached: True when the result was replayed, not computed.
        source: ``"memo"``, ``"disk"``, ``"computed"``, ``"journal"``
            (resumed from a run journal) or ``"none"`` (failed).
        seconds: Wall-clock this invocation spent obtaining the cell
            (≈0 for replays).
        compute_seconds: Wall-clock of the original fresh computation.
        status: ``"ok"``, ``"failed"`` or ``"timeout"``.
        error: Captured failure details when ``status != "ok"``.
        attempts: Number of attempts spent on the cell (1 = first try).
    """

    cell: Cell
    result: BenchmarkResult | None
    key: str
    cached: bool
    source: str
    seconds: float
    compute_seconds: float
    status: str = STATUS_OK
    error: CellError | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def unwrap(self) -> BenchmarkResult:
        """The result, or a :class:`ReproError` re-raising the failure."""
        if self.ok and self.result is not None:
            return self.result
        error = self.error or CellError("Unknown", "unknown", "no result")
        raise ReproError(
            f"cell {self.cell.label} {self.status} after "
            f"{self.attempts} attempt(s): [{error.type} at {error.stage}] "
            f"{error.message}"
        )


def compute_cell(cell: Cell) -> tuple[BenchmarkResult, float]:
    """Run one cell's full pipeline; returns (result, seconds)."""
    start = time.perf_counter()
    result = run_benchmark(
        cell.workload, cell.scheme, width=cell.width, scale=cell.scale
    )
    return result, time.perf_counter() - start


def _pool_worker(payload: tuple[str, dict]) -> tuple[str, dict]:
    """Process-pool entry point (must stay module-level picklable).

    Exceptions are captured into the returned payload rather than
    raised: a raised exception would have to survive pickling back to
    the parent, and the parent wants type/stage strings anyway.
    """
    key, cell_doc = payload
    try:
        result, seconds = compute_cell(Cell.from_dict(cell_doc))
    except Exception as exc:
        return key, {
            "ok": False,
            "error": CellError.from_exception(exc).as_dict(),
        }
    return key, {"ok": True, "result": result_to_dict(result), "seconds": seconds}


def _decode_cache_entry(entry: dict) -> tuple[BenchmarkResult, float] | None:
    """Decode a disk entry defensively; ``None`` = treat as a miss.

    A corrupted entry (torn write survived the JSON parse, bit rot, a
    stale schema) must cost a recomputation, never a crash.
    """
    try:
        result = result_from_dict(entry["result"])
        compute_seconds = float(entry.get("compute_seconds", 0.0))
    except (ReproError, KeyError, TypeError, ValueError):
        return None
    return result, compute_seconds


def _backoff_delay(attempt: int, backoff: float) -> float:
    if backoff <= 0:
        return 0.0
    return min(backoff * (2 ** (attempt - 1)), _MAX_BACKOFF)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, terminating hung or wedged workers."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_cells(
    cells: list[Cell],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    progress: Callable[[CellOutcome], None] | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
) -> list[CellOutcome]:
    """Resolve every cell; returns outcomes in input order (deduplicated).

    Never raises for a cell's failure — inspect ``CellOutcome.status``
    (or call ``unwrap()``) instead.

    Args:
        cells: Cells to run; duplicates are resolved once.
        jobs: Worker processes (<=1 runs inline in this process, unless
            ``timeout`` is set, which requires the pool for isolation).
        cache: Optional on-disk cache consulted before computing and
            updated (atomically) after.
        force: Recompute even on a cache hit (the cache is rewritten).
        progress: Callback invoked as each cell resolves, in completion
            order.
        timeout: Per-cell wall-clock limit in seconds; a cell past it is
            killed (pool respawn) and retried or marked ``timeout``.
        retries: Extra attempts per cell after the first failure.
        backoff: Base of the exponential retry delay
            (``backoff * 2**(attempt-1)`` seconds, capped).
    """
    ordered: list[tuple[Cell, str]] = []
    seen: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        if key not in seen:
            seen.add(key)
            ordered.append((cell, key))

    outcomes: dict[str, CellOutcome] = {}
    pending: list[tuple[Cell, str]] = []
    max_attempts = max(1, retries + 1)

    def _resolved(outcome: CellOutcome) -> None:
        outcomes[outcome.key] = outcome
        if progress is not None:
            progress(outcome)

    for cell, key in ordered:
        if not force:
            memoized = _memo_get(key)
            if memoized is not None:
                result, compute_seconds = memoized
                _resolved(
                    CellOutcome(cell, result, key, True, "memo", 0.0, compute_seconds)
                )
                continue
        if not force and cache is not None:
            start = time.perf_counter()
            entry = cache.get(key)
            decoded = _decode_cache_entry(entry) if entry is not None else None
            if decoded is not None:
                result, compute_seconds = decoded
                _memo_put(key, (result, compute_seconds))
                _resolved(
                    CellOutcome(
                        cell,
                        result,
                        key,
                        True,
                        "disk",
                        time.perf_counter() - start,
                        compute_seconds,
                    )
                )
                continue
        pending.append((cell, key))

    # All machine configs of one (workload, scheme, scale) share a packed
    # trace, so group them: the capture from the first config is still in
    # the replay pool (or freshly on disk) when its siblings run.
    # Outcomes are returned in input order regardless.
    pending.sort(
        key=lambda item: (
            item[0].workload,
            item[0].scheme,
            -1 if item[0].scale is None else item[0].scale,
            item[0].width,
        )
    )

    def _computed(
        cell: Cell,
        key: str,
        result: BenchmarkResult,
        seconds: float,
        attempts: int = 1,
    ) -> None:
        _memo_put(key, (result, seconds))
        if cache is not None:
            cache.put(
                key,
                {
                    "cell": cell.as_dict(),
                    "result": result_to_dict(result),
                    "compute_seconds": seconds,
                },
            )
        _resolved(
            CellOutcome(
                cell, result, key, False, "computed", seconds, seconds,
                STATUS_OK, None, attempts,
            )
        )

    def _failed(
        cell: Cell, key: str, status: str, error: CellError, attempts: int
    ) -> None:
        _resolved(
            CellOutcome(
                cell, None, key, False, "none", 0.0, 0.0, status, error, attempts
            )
        )

    if pending and timeout is None and (jobs <= 1 or len(pending) == 1):
        _run_serial(pending, max_attempts, backoff, _computed, _failed)
    elif pending:
        _run_pool(
            pending, jobs, timeout, max_attempts, backoff, _computed, _failed
        )

    return [outcomes[key] for _, key in ordered]


def _run_serial(
    pending: list[tuple[Cell, str]],
    max_attempts: int,
    backoff: float,
    _computed: Callable,
    _failed: Callable,
) -> None:
    """Inline execution with the same retry/error-capture semantics.

    In-process execution cannot survive a worker crash or enforce a
    wall-clock timeout — callers needing those guarantees set
    ``timeout`` or ``jobs > 1`` to get process isolation.
    """
    for cell, key in pending:
        for attempt in range(1, max_attempts + 1):
            try:
                result, seconds = compute_cell(cell)
            except Exception as exc:
                if attempt < max_attempts:
                    time.sleep(_backoff_delay(attempt, backoff))
                    continue
                _failed(
                    cell, key, STATUS_FAILED,
                    CellError.from_exception(exc), attempt,
                )
            else:
                # normalize through the dict round trip so serial results
                # are representationally identical to pooled/cached ones
                _computed(
                    cell, key,
                    result_from_dict(result_to_dict(result)),
                    seconds, attempt,
                )
            break


def _run_pool(
    pending: list[tuple[Cell, str]],
    jobs: int,
    timeout: float | None,
    max_attempts: int,
    backoff: float,
    _computed: Callable,
    _failed: Callable,
) -> None:
    """Fan out over a worker pool, surviving crashes, hangs and errors.

    Submission is throttled to the worker count so a task's submit time
    approximates its start time, making per-cell deadlines meaningful.
    """
    # (cell, key, attempt, not_before): ready-to-run work items
    queue: deque[tuple[Cell, str, int, float]] = deque(
        (cell, key, 1, 0.0) for cell, key in pending
    )
    workers_limit = max(1, min(jobs, len(pending)))
    pool: ProcessPoolExecutor | None = None
    pool_breaks = 0
    # future -> (cell, key, attempt, deadline)
    inflight: dict = {}

    def _requeue(cell: Cell, key: str, attempt: int, error: CellError, status: str) -> None:
        """Retry a failed attempt or record the final failure."""
        if attempt < max_attempts:
            queue.append(
                (cell, key, attempt + 1,
                 time.monotonic() + _backoff_delay(attempt, backoff))
            )
        else:
            _failed(cell, key, status, error, attempt)

    def _handle_break() -> None:
        """The pool died under us: every in-flight cell is a suspect.

        A ``BrokenProcessPool`` carries no attribution, so a cell is
        only *charged* an attempt when it was the lone in-flight cell
        (then the dead worker must have been running it).  Ambiguous
        breaks requeue every suspect uncharged; repeated breaks drop to
        single-worker isolation, where the next break attributes — and
        charges — exactly one cell.  Innocent siblings of a crashing
        cell therefore never exhaust their attempts by association.
        """
        nonlocal pool, pool_breaks
        pool_breaks += 1
        suspects = list(inflight.values())
        inflight.clear()
        if pool is not None:
            _kill_pool(pool)
            pool = None
        if len(suspects) == 1:
            cell, key, attempt, _deadline = suspects[0]
            _requeue(
                cell, key, attempt,
                CellError(
                    "BrokenProcessPool", "worker",
                    "worker process died before returning a result",
                ),
                STATUS_FAILED,
            )
        else:
            for cell, key, attempt, _deadline in suspects:
                queue.append(
                    (cell, key, attempt,
                     time.monotonic() + _backoff_delay(1, backoff))
                )

    try:
        while queue or inflight:
            # isolation mode: after repeated breakages, run one cell at a
            # time so the next crash attributes to exactly one cell
            workers = 1 if pool_breaks >= _ISOLATE_AFTER_BREAKS else workers_limit
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)

            now = time.monotonic()
            while queue and len(inflight) < workers:
                for _ in range(len(queue)):
                    if queue[0][3] <= now:
                        break
                    queue.rotate(-1)
                else:
                    break  # everything queued is still backing off
                cell, key, attempt, _not_before = queue.popleft()
                try:
                    future = pool.submit(_pool_worker, (key, cell.as_dict()))
                except BrokenProcessPool:
                    queue.appendleft((cell, key, attempt, 0.0))
                    _handle_break()
                    break
                deadline = None if timeout is None else now + timeout
                inflight[future] = (cell, key, attempt, deadline)
            if pool is None:
                continue  # pool broke during submission; respawn and retry

            if not inflight:
                soonest = min(item[3] for item in queue)
                time.sleep(max(0.0, soonest - time.monotonic()) + 0.005)
                continue

            now = time.monotonic()
            wakeups = [
                deadline
                for *_rest, deadline in inflight.values()
                if deadline is not None
            ]
            wakeups.extend(item[3] for item in queue if item[3] > now)
            wait_timeout = (
                max(0.0, min(wakeups) - now) + 0.01 if wakeups else None
            )
            done, _ = wait(
                set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )

            broken = False
            for future in done:
                cell, key, attempt, _deadline = inflight.pop(future)
                try:
                    _, payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    inflight[future] = (cell, key, attempt, _deadline)
                    continue
                except Exception as exc:
                    # e.g. the payload failed to unpickle; a cell-level
                    # failure, not a pool-level one
                    payload = {
                        "ok": False,
                        "error": CellError.from_exception(exc).as_dict(),
                    }
                if payload["ok"]:
                    _computed(
                        cell, key,
                        result_from_dict(payload["result"]),
                        payload["seconds"], attempt,
                    )
                else:
                    _requeue(
                        cell, key, attempt,
                        CellError.from_dict(payload["error"]), STATUS_FAILED,
                    )
            if broken:
                _handle_break()
                continue

            if timeout is not None:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_c, _k, _a, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                if expired:
                    for future in expired:
                        cell, key, attempt, _deadline = inflight.pop(future)
                        _requeue(
                            cell, key, attempt,
                            CellError(
                                "Timeout", "unknown",
                                f"cell exceeded {timeout:g}s wall clock",
                            ),
                            STATUS_TIMEOUT,
                        )
                    # the hung workers still occupy pool slots: kill the
                    # pool and restart the interrupted (innocent) cells
                    # without charging them an attempt
                    for cell, key, attempt, _deadline in inflight.values():
                        queue.appendleft((cell, key, attempt, 0.0))
                    inflight.clear()
                    _kill_pool(pool)
                    pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


def results_by_cell(outcomes: list[CellOutcome]) -> dict[Cell, BenchmarkResult]:
    """Convenience lookup table for the figure/table drivers.

    Raises on any failed outcome: the drivers need every cell, and a
    silent hole in the table would surface as a confusing ``KeyError``
    far from the cause.
    """
    return {outcome.cell: outcome.unwrap() for outcome in outcomes}
