"""Parallel, cached execution of experiment-matrix cells.

Resolution order for each cell:

1. the in-process memo (shared by every figure/table driver of one
   invocation, replacing the old ``runner._CACHE``),
2. the on-disk :class:`~repro.bench.cache.ResultCache` (if given),
3. fresh computation — inline for ``jobs <= 1``, otherwise fanned out
   over a :class:`concurrent.futures.ProcessPoolExecutor`.

Workers return plain dicts (the same serialization the cache stores),
so a parallel run, a serial run and a cache replay all yield
bit-identical result documents — the property the harness tests and
the CI baseline gate rely on.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

from repro.bench.cache import ResultCache, cell_key
from repro.bench.matrix import Cell
from repro.bench.results import result_from_dict, result_to_dict
from repro.experiments.runner import BenchmarkResult, run_benchmark

#: key -> (result, fresh compute seconds); one process-wide memo.
_MEMO: dict[str, tuple[BenchmarkResult, float]] = {}


def clear_memo() -> None:
    """Drop the in-process memo (tests and long-lived processes)."""
    _MEMO.clear()


@dataclass(eq=False, slots=True)
class CellOutcome:
    """One resolved cell.

    Attributes:
        cell: The matrix cell.
        result: The (possibly replayed) benchmark result.
        key: Content-address of the cell (cache key).
        cached: True when the result was replayed, not computed.
        source: ``"memo"``, ``"disk"`` or ``"computed"``.
        seconds: Wall-clock this invocation spent obtaining the cell
            (≈0 for replays).
        compute_seconds: Wall-clock of the original fresh computation.
    """

    cell: Cell
    result: BenchmarkResult
    key: str
    cached: bool
    source: str
    seconds: float
    compute_seconds: float


def compute_cell(cell: Cell) -> tuple[BenchmarkResult, float]:
    """Run one cell's full pipeline; returns (result, seconds)."""
    start = time.perf_counter()
    result = run_benchmark(
        cell.workload, cell.scheme, width=cell.width, scale=cell.scale
    )
    return result, time.perf_counter() - start


def _pool_worker(payload: tuple[str, dict]) -> tuple[str, dict, float]:
    """Process-pool entry point (must stay module-level picklable)."""
    key, cell_doc = payload
    result, seconds = compute_cell(Cell.from_dict(cell_doc))
    return key, result_to_dict(result), seconds


def run_cells(
    cells: list[Cell],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    progress: Callable[[CellOutcome], None] | None = None,
) -> list[CellOutcome]:
    """Resolve every cell; returns outcomes in input order (deduplicated).

    Args:
        cells: Cells to run; duplicates are resolved once.
        jobs: Worker processes (<=1 runs inline in this process).
        cache: Optional on-disk cache consulted before computing and
            updated (atomically) after.
        force: Recompute even on a cache hit (the cache is rewritten).
        progress: Callback invoked as each cell resolves, in completion
            order.
    """
    ordered: list[tuple[Cell, str]] = []
    seen: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        if key not in seen:
            seen.add(key)
            ordered.append((cell, key))

    outcomes: dict[str, CellOutcome] = {}
    pending: list[tuple[Cell, str]] = []

    def _resolved(outcome: CellOutcome) -> None:
        outcomes[outcome.key] = outcome
        if progress is not None:
            progress(outcome)

    for cell, key in ordered:
        if not force and key in _MEMO:
            result, compute_seconds = _MEMO[key]
            _resolved(
                CellOutcome(cell, result, key, True, "memo", 0.0, compute_seconds)
            )
            continue
        if not force and cache is not None:
            start = time.perf_counter()
            entry = cache.get(key)
            if entry is not None:
                result = result_from_dict(entry["result"])
                compute_seconds = entry.get("compute_seconds", 0.0)
                _MEMO[key] = (result, compute_seconds)
                _resolved(
                    CellOutcome(
                        cell,
                        result,
                        key,
                        True,
                        "disk",
                        time.perf_counter() - start,
                        compute_seconds,
                    )
                )
                continue
        pending.append((cell, key))

    def _computed(cell: Cell, key: str, result: BenchmarkResult, seconds: float) -> None:
        _MEMO[key] = (result, seconds)
        if cache is not None:
            cache.put(
                key,
                {
                    "cell": cell.as_dict(),
                    "result": result_to_dict(result),
                    "compute_seconds": seconds,
                },
            )
        _resolved(CellOutcome(cell, result, key, False, "computed", seconds, seconds))

    if pending and (jobs <= 1 or len(pending) == 1):
        for cell, key in pending:
            result, seconds = compute_cell(cell)
            # normalize through the dict round trip so serial results are
            # representationally identical to pooled/cached ones
            _computed(cell, key, result_from_dict(result_to_dict(result)), seconds)
    elif pending:
        by_key = {key: cell for cell, key in pending}
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_pool_worker, (key, cell.as_dict())): key
                for cell, key in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    key, result_doc, seconds = future.result()
                    _computed(by_key[key], key, result_from_dict(result_doc), seconds)

    return [outcomes[key] for _, key in ordered]


def results_by_cell(outcomes: list[CellOutcome]) -> dict[Cell, BenchmarkResult]:
    """Convenience lookup table for the figure/table drivers."""
    return {outcome.cell: outcome.result for outcome in outcomes}
