"""The experiment matrix: cells and named suites.

One :class:`Cell` is one (workload, scheme, machine width, scale)
configuration — exactly the unit the paper varies between bars of
Figures 8–10.  Suites are the standard collections of cells the
``repro bench`` CLI and CI run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.workloads import FP_BENCHMARKS, INT_BENCHMARKS, WORKLOADS

#: Schemes a cell may use (mirrors ``experiments.runner.SCHEMES``).
SCHEMES = ("conventional", "basic", "advanced")

#: Machine widths of Table 1.
WIDTHS = (4, 8)


@dataclass(frozen=True, slots=True)
class Cell:
    """One point of the experiment matrix.

    Attributes:
        workload: Workload name from :mod:`repro.workloads`, or a
            generator spec (``gen:mixer?seed=7&ldst=0.3``).  Spec
            strings are normalized to their canonical spelling at
            construction so equal specs land on equal cache keys.
        scheme: ``"conventional"``, ``"basic"`` or ``"advanced"``.
        width: Machine width, 4 or 8 (Table 1).
        scale: Workload scale override (``None`` = the workload default).
    """

    workload: str
    scheme: str
    width: int
    scale: int | None = None

    def __post_init__(self) -> None:
        from repro.gen import GeneratorSpec, is_generator_spec

        if is_generator_spec(self.workload):
            # parse validates; canonicalize so spellings of the same
            # spec share one cache key
            spec = GeneratorSpec.parse(self.workload)
            object.__setattr__(self, "workload", spec.canonical())
        elif self.workload not in WORKLOADS:
            from repro.gen import GENERATORS

            examples = ", ".join(f"gen:{g}?seed=N" for g in sorted(GENERATORS))
            raise ReproError(
                f"unknown workload {self.workload!r}; "
                f"available: {sorted(WORKLOADS)} "
                f"or generator specs ({examples})"
            )
        if self.scheme not in SCHEMES:
            raise ReproError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}"
            )
        if self.width not in WIDTHS:
            raise ReproError(f"width must be one of {WIDTHS}, got {self.width}")
        if self.scale is not None and self.scale <= 0:
            raise ReproError(f"scale must be positive, got {self.scale}")

    @property
    def label(self) -> str:
        suffix = f"@{self.scale}" if self.scale is not None else ""
        return f"{self.workload}/{self.scheme}/{self.width}-way{suffix}"

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "width": self.width,
            "scale": self.scale,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Cell":
        return cls(doc["workload"], doc["scheme"], doc["width"], doc.get("scale"))


def _grid(names, schemes, width) -> list[Cell]:
    return [Cell(n, s, width) for n in names for s in schemes]


def fig8_matrix() -> list[Cell]:
    """Figure 8: FPa partition sizes — both schemes, 4-way machine."""
    return _grid(INT_BENCHMARKS, ("basic", "advanced"), 4)


def fig9_matrix() -> list[Cell]:
    """Figure 9: speedups on the 4-way machine (needs the baseline)."""
    return _grid(INT_BENCHMARKS, SCHEMES, 4)


def fig10_matrix() -> list[Cell]:
    """Figure 10: speedups on the 8-way machine."""
    return _grid(INT_BENCHMARKS, SCHEMES, 8)


def fp_matrix() -> list[Cell]:
    """§7.5: both schemes applied to the floating-point surrogates."""
    return _grid(FP_BENCHMARKS, SCHEMES, 4)


def all_matrix() -> list[Cell]:
    """Every cell the paper's figures and tables need, deduplicated."""
    seen: dict[Cell, None] = {}
    for cell in fig8_matrix() + fig9_matrix() + fig10_matrix() + fp_matrix():
        seen.setdefault(cell, None)
    return list(seen)


#: Small, fast cells for CI smoke tests and the harness's own tests.
_SMOKE_SCALES = {"compress": 150, "m88ksim": 2}


def smoke_matrix() -> list[Cell]:
    return [
        Cell(name, scheme, 4, scale)
        for name, scale in _SMOKE_SCALES.items()
        for scheme in SCHEMES
    ]


#: Generator-spec cells for the gen-smoke suite: one point per
#: generator plus an axis variation, small scales for CI.
_GEN_SMOKE_SPECS = (
    "gen:mixer?scale=40&seed=1",
    "gen:mixer?ldst=0.6&scale=40&seed=2",
    "gen:chains?scale=40&seed=3",
)


def gen_smoke_matrix() -> list[Cell]:
    """Generated workloads through the same cell machinery (CI smoke)."""
    return [Cell(spec, scheme, 4) for spec in _GEN_SMOKE_SPECS
            for scheme in SCHEMES]


SUITES = {
    "fig8": fig8_matrix,
    "fig9": fig9_matrix,
    "fig10": fig10_matrix,
    "fp": fp_matrix,
    "all": all_matrix,
    "smoke": smoke_matrix,
    "gen-smoke": gen_smoke_matrix,
}


def suite_cells(name: str, scale: int | None = None) -> list[Cell]:
    """Cells of a named suite, optionally forcing one scale everywhere."""
    factory = SUITES.get(name)
    if factory is None:
        raise ReproError(f"unknown suite {name!r}; available: {sorted(SUITES)}")
    cells = factory()
    if scale is not None:
        cells = [replace(cell, scale=scale) for cell in cells]
    return cells
