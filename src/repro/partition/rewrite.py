"""Code rewriting: materialize a partition into executable IR.

Given a legal :class:`~repro.partition.partition.Partition`, the rewriter
mutates the function so that:

* every offloaded instruction (WHOLE node in FPa) is replaced by its
  ``.a`` twin, with destination and sources renamed into the FP file;
* loads whose value node is in FPa become ``l.s`` (the paper's converted
  floating-point loads) and stores whose value node is in FPa become
  ``s.s``;
* each copy site gets a ``cp_to_comp`` immediately after the defining
  instruction, writing the value's FP *shadow register*;
* each duplication site gets its ``.a`` twin immediately after the
  original, writing the shadow register and reading the shadow registers
  of its operands (which the demand closure guarantees exist);
* each back-copy site (FPa producer of a call argument or return value,
  §6.4) gets a ``cp_from_comp`` restoring the INT-file register the call
  or return reads.

Shadow naming is deterministic — ``v7`` shadows to ``vf7`` — so multiple
definitions of the same virtual register (loop-carried variables) all
write the same FP-file name and merges remain consistent.

The function's RDG and the partition itself are *invalidated* by the
rewrite (instruction objects are mutated and new ones inserted); rebuild
them if needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpKind, fpa_twin
from repro.ir.registers import Reg, RegClass, ZERO
from repro.partition.partition import Partition
from repro.rdg.graph import Node, Part


@dataclass(slots=True)
class RewriteStats:
    """Static counts of what the rewrite changed."""

    offloaded: int = 0
    converted_loads: int = 0
    converted_stores: int = 0
    copies_inserted: int = 0
    dups_inserted: int = 0
    back_copies_inserted: int = 0

    @property
    def total_inserted(self) -> int:
        return self.copies_inserted + self.dups_inserted + self.back_copies_inserted


def _shadow(reg: Reg) -> Reg:
    """FP-file shadow register of an INT-file virtual register."""
    if reg == ZERO:
        raise PartitionError("cannot shadow $zero into the FP file")
    return reg.with_class(RegClass.FP)


def apply_partition(
    func: Function,
    partition: Partition,
    fp_params: set[int] | None = None,
    fp_call_args: dict[int, set[int]] | None = None,
    skip_back_copies: set | None = None,
    skip_param_copies: set | None = None,
) -> RewriteStats:
    """Rewrite ``func`` in place according to ``partition``.

    The four optional arguments carry the interprocedural extension's
    decisions (:mod:`repro.partition.interproc`): parameter indices this
    function receives in FP registers, call positions whose arguments
    are passed in FP registers, and the copy sites those decisions make
    unnecessary.

    Returns static rewrite statistics.  Raises
    :class:`~repro.errors.PartitionError` on internally inconsistent
    partitions (which :func:`check_partition` should have caught).
    """
    rdg = partition.rdg
    if rdg.func is not func:
        raise PartitionError("partition was computed for a different function")
    stats = RewriteStats()

    fp = partition.fp
    in_copies = {node.uid for node in partition.copies}
    in_dups = {node.uid for node in partition.dups}
    in_back = {node.uid for node in partition.back_copies}
    fp_params = fp_params or set()
    fp_call_args = fp_call_args or {}
    if skip_back_copies:
        in_back -= {node.uid for node in skip_back_copies}
    if skip_param_copies:
        in_copies -= {node.uid for node in skip_param_copies}

    def value_node(instr: Instruction) -> Node:
        if instr.is_memory:
            return Node(instr.uid, Part.VALUE)
        return Node(instr.uid, Part.WHOLE)

    for blk in func.blocks:
        new_instrs: list[Instruction] = []
        # Communication for formal parameters is deferred past the param
        # prefix so `param` instructions stay contiguous at function entry.
        pending_after_params: list[Instruction] = []
        in_param_prefix = blk is func.entry
        for instr in blk.instructions:
            kind = instr.kind
            uid = instr.uid
            if in_param_prefix and kind is not OpKind.PARAM:
                in_param_prefix = False
                new_instrs.extend(pending_after_params)
                pending_after_params = []
            emit_after = pending_after_params if in_param_prefix else new_instrs

            if kind is OpKind.LOAD:
                vnode = Node(uid, Part.VALUE)
                if vnode in fp and instr.op is not Opcode.LS:
                    if instr.op is not Opcode.LW:
                        raise PartitionError(f"cannot convert {instr.op} to l.s")
                    instr.op = Opcode.LS
                    instr.defs[0] = _shadow(instr.defs[0])
                    stats.converted_loads += 1
                new_instrs.append(instr)
            elif kind is OpKind.STORE:
                vnode = Node(uid, Part.VALUE)
                if vnode in fp and instr.op is not Opcode.SS:
                    if instr.op is not Opcode.SW:
                        raise PartitionError(f"cannot convert {instr.op} to s.s")
                    instr.op = Opcode.SS
                    instr.uses[0] = _shadow(instr.uses[0])
                    stats.converted_stores += 1
                new_instrs.append(instr)
            elif kind is OpKind.PARAM and instr.imm in fp_params:
                # interprocedural extension: received directly in the FP
                # file — the value arrives in an FP register, no copy
                instr.defs[0] = _shadow(instr.defs[0])
                func.fp_params.add(instr.imm)
                new_instrs.append(instr)
            elif kind is OpKind.CALL and uid in fp_call_args:
                for pos in fp_call_args[uid]:
                    instr.uses[pos] = _shadow(instr.uses[pos])
                new_instrs.append(instr)
            else:
                wnode = Node(uid, Part.WHOLE)
                if wnode in fp and not instr.info.fp_subsystem:
                    twin = fpa_twin(instr.op)
                    if twin is None:
                        raise PartitionError(
                            f"{instr!r} assigned to FPa but has no .a twin"
                        )
                    instr.op = twin
                    instr.defs[:] = [_shadow(d) for d in instr.defs]
                    instr.uses[:] = [
                        _shadow(u) if u.rclass is RegClass.INT else u
                        for u in instr.uses
                    ]
                    stats.offloaded += 1
                new_instrs.append(instr)

            # communication, placed immediately after the producing instr
            if uid in in_dups:
                original = instr
                twin = fpa_twin(original.op)
                if twin is None:
                    raise PartitionError(f"cannot duplicate {original!r}")
                dup = Instruction(
                    op=twin,
                    defs=[_shadow(d) for d in original.defs],
                    uses=[
                        _shadow(u) if u.rclass is RegClass.INT else u
                        for u in original.uses
                    ],
                    imm=original.imm,
                    target=original.target,
                )
                func.attach(dup)
                emit_after.append(dup)
                stats.dups_inserted += 1
            elif uid in in_copies:
                src = instr.defs[0] if instr.defs else None
                if src is None:
                    raise PartitionError(f"copy site {instr!r} defines nothing")
                copy = Instruction(
                    op=Opcode.CP_TO_COMP, defs=[_shadow(src)], uses=[src]
                )
                func.attach(copy)
                emit_after.append(copy)
                stats.copies_inserted += 1
            if uid in in_back and value_node(instr) in fp:
                # the def was renamed into the FP file above; restore the
                # INT-file name the call/ret reads.
                fp_def = instr.defs[0]
                back = Instruction(
                    op=Opcode.CP_FROM_COMP,
                    defs=[fp_def.with_class(RegClass.INT)],
                    uses=[fp_def],
                )
                func.attach(back)
                emit_after.append(back)
                stats.back_copies_inserted += 1

        new_instrs.extend(pending_after_params)
        blk.instructions = new_instrs

    func.renumber()
    return stats
