"""The basic partitioning scheme (paper §5).

No extra instructions are allowed, so all inter-partition communication
must flow through existing program loads and stores.  The partitioning
conditions (§5.1) then say a node and everything connected to it in the
*undirected* RDG must live in the same partition; the algorithm (§5.2)
is therefore a connected-components pass:

* components containing a load/store address node, a call-argument or
  return-value node, or any other INT-pinned node go to INT;
* every other component — which by construction computes only branch
  outcomes and store values — goes to FPa.

Components are computed ignoring the out-edges of pre-existing copy
instructions (``cp_to_comp``/``cp_from_comp`` emitted by the frontend
for int/float conversions): those edges already cross the register
files, so they do not constrain the assignment.
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.ir.function import Function
from repro.ir.opcodes import OpKind
from repro.rdg.build import build_rdg
from repro.rdg.graph import RDG, Node, Pin
from repro.partition.partition import Partition, check_partition


def components_ignoring_copies(rdg: RDG) -> list[set[Node]]:
    """Undirected components, with copy out-edges treated as absent."""
    seen: set[Node] = set()
    components: list[set[Node]] = []

    def neighbours(node: Node):
        is_copy = rdg.instruction(node).kind is OpKind.COPY
        for succ in rdg.succs[node]:
            if not is_copy:
                yield succ
        for pred in rdg.preds[node]:
            if rdg.instruction(pred).kind is not OpKind.COPY:
                yield pred

    for start in rdg.nodes:
        if start in seen:
            continue
        comp: set[Node] = set()
        work = [start]
        seen.add(start)
        while work:
            node = work.pop()
            comp.add(node)
            for other in neighbours(node):
                if other not in seen:
                    seen.add(other)
                    work.append(other)
        components.append(comp)
    return components


def basic_partition(func: Function, rdg: RDG | None = None) -> Partition:
    """Partition ``func`` with the basic scheme.

    Args:
        func: Function to partition (virtual-register IR).
        rdg: Pre-built RDG, rebuilt if None.

    Returns:
        A legal :class:`Partition` with empty copy/duplicate sets.
    """
    if rdg is None:
        rdg = build_rdg(func)

    fp: set[Node] = set()
    for comp in components_ignoring_copies(rdg):
        pins = {rdg.pin.get(node) for node in comp}
        pins.discard(None)
        if Pin.INT in pins and Pin.FP in pins:
            raise PartitionError(
                f"{func.name}: component mixes INT- and FP-pinned nodes: "
                f"{sorted(comp, key=lambda n: (n.uid, n.part.value))!r}"
            )
        if Pin.INT not in pins:
            fp.update(comp)

    partition = Partition(rdg=rdg, fp=fp, scheme="basic")
    check_partition(partition)
    return partition
