"""Human-readable partition listings.

The paper presents its partitions as annotated assembly: offloaded
instructions carry a ``p`` suffix and converted memory operations are
italicized (Figures 4–6).  :func:`annotate_partition` produces the
textual equivalent *before* rewriting — each instruction is tagged with
its assignment — and :func:`partition_summary_table` aggregates per-slice
statistics, which is how the paper's Figure 8 bars decompose.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.printer import print_instruction
from repro.partition.partition import Partition
from repro.rdg.classify import TerminalKind, terminal_kind
from repro.rdg.graph import Node, Part


def _tag(partition: Partition, instr) -> str:
    """Assignment tag for one instruction: INT, FPa, or split marks."""
    rdg = partition.rdg
    if instr.is_memory:
        value = Node(instr.uid, Part.VALUE) in partition.fp
        return "INT/fpa-data" if value else "INT"
    node = Node(instr.uid, Part.WHOLE)
    marks = []
    if node in partition.fp:
        marks.append("FPa")
    else:
        marks.append("INT")
        if node in partition.copies:
            marks.append("+copy")
        if node in partition.dups:
            marks.append("+dup")
    if node in partition.back_copies:
        marks.append("+backcopy")
    return "".join(marks)


def annotate_partition(func: Function, partition: Partition) -> str:
    """Render ``func`` with per-instruction partition assignments.

    Must be called *before* :func:`~repro.partition.rewrite.apply_partition`
    (the rewrite invalidates the partition's node identities).
    """
    if partition.rdg.func is not func:
        raise ValueError("partition belongs to a different function")
    lines = [f"func {func.name}  [{partition.scheme} scheme]"]
    for blk in func.blocks:
        lines.append(f"{blk.label}:")
        for instr in blk.instructions:
            tag = _tag(partition, instr)
            lines.append(f"  {print_instruction(instr):42s} ; {tag}")
    return "\n".join(lines)


def partition_summary_table(partition: Partition) -> dict[str, dict[str, int]]:
    """Decompose the partition by slice-terminal kind.

    Returns ``{terminal kind: {"int": n, "fpa": n}}`` counting, for each
    branch/store-value/... terminal, where it was assigned — the
    per-kind breakdown behind the paper's §4 discussion (branch and
    store-value slices are the FPa candidates; addresses, calls and
    returns are INT by construction).
    """
    rdg = partition.rdg
    table: dict[str, dict[str, int]] = {
        kind.value: {"int": 0, "fpa": 0} for kind in TerminalKind
    }
    table["interior"] = {"int": 0, "fpa": 0}
    for node in rdg.nodes:
        kind = terminal_kind(rdg, node)
        key = kind.value if kind is not None else "interior"
        side = "fpa" if node in partition.fp else "int"
        table[key][side] += 1
    return table


def offload_by_opcode(partition: Partition) -> dict[str, int]:
    """Static count of offloaded instructions per mnemonic (which
    opcodes of the 22-op extension actually get used)."""
    rdg = partition.rdg
    out: dict[str, int] = {}
    for node in partition.fp:
        if node.part is not Part.WHOLE:
            continue
        instr = rdg.instruction(node)
        if instr.info.fp_subsystem:
            continue  # already-FP code, not offloaded integer work
        out[instr.op.value] = out.get(instr.op.value, 0) + 1
    return out
