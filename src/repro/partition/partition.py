"""Partition datatype and legality checking.

A :class:`Partition` records, for one function's RDG, which nodes were
assigned to the FPa subsystem, plus the communication sets of the
advanced scheme:

* ``copies`` (S_copy) — INT nodes whose result is copied into the FP
  file with a ``cp_to_comp`` so their FPa children can read it.
* ``dups`` (S_dupl) — INT nodes re-executed in FPa with their ``.a``
  twin, eliminating communication.
* ``back_copies`` — FPa producers of call arguments / return values
  whose result is copied back with ``cp_from_comp`` (paper §6.4, the one
  place copies run FPa -> INT).

:func:`check_partition` enforces the paper's partitioning conditions
(§5.1 as generalized by §6): the partitions are disjoint, pinned nodes
are respected, and every cross-partition register edge is mediated by a
copy, a duplicate, or an allowed calling-convention edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PartitionError
from repro.ir.opcodes import OpKind
from repro.rdg.graph import RDG, Node, Part, Pin


@dataclass(eq=False, slots=True)
class Partition:
    """The result of partitioning one function.

    ``fp`` holds the FPa-partition nodes; every other RDG node is in the
    INT partition (the two are disjoint by construction, condition 1 of
    §5.1).
    """

    rdg: RDG
    fp: set[Node] = field(default_factory=set)
    copies: set[Node] = field(default_factory=set)
    dups: set[Node] = field(default_factory=set)
    back_copies: set[Node] = field(default_factory=set)
    scheme: str = "none"

    def is_fp(self, node: Node) -> bool:
        return node in self.fp

    def int_nodes(self) -> list[Node]:
        return [n for n in self.rdg.nodes if n not in self.fp]

    def fp_fraction_static(self) -> float:
        """Fraction of RDG nodes assigned to FPa (static measure)."""
        if not self.rdg.nodes:
            return 0.0
        return len(self.fp) / len(self.rdg.nodes)


def _is_cut_edge(rdg: RDG, src: Node, dst: Node) -> bool:
    """Edges out of copy instructions legally cross partitions (the copy
    *is* the communication)."""
    return rdg.instruction(src).kind is OpKind.COPY


def iter_partition_violations(
    partition: Partition,
) -> Iterator[tuple[str, Node | None]]:
    """Yield every violation of the partitioning conditions as
    ``(message, offending node)``.

    Checks, for RDG ``G`` with FPa partition ``F`` and INT partition
    ``I``:

    1. ``F`` respects pins: no INT-pinned node in ``F``, every FP-pinned
       node in ``F``.
    2. Every edge ``u -> v`` with ``u in I, v in F`` has ``u`` in
       ``copies | dups`` (basic scheme: such edges must not exist at
       all, which follows since its copy sets are empty).
    3. Every edge ``u -> v`` with ``u in F, v in I`` is either a
       convention edge with ``u`` in ``back_copies``, or an edge out of
       a pre-existing copy instruction.
    4. Copy/dup/back-copy membership is consistent (copies and dups are
       INT nodes that define a register; back-copies are FPa nodes).
    5. Duplicated nodes are duplicable and their parents are available
       in FPa (in ``F`` or themselves copied/duplicated).

    :func:`check_partition` raises on the first yielded violation; the
    lint partition-legality rule reports them all.
    """
    from repro.partition.copydup import is_duplicable

    rdg = partition.rdg
    fp = partition.fp

    for node in fp:
        if rdg.pin.get(node) is Pin.INT:
            yield f"{node!r} is INT-pinned but assigned to FPa", node
    for node, pin in rdg.pin.items():
        if pin is Pin.FP and node not in fp:
            yield f"{node!r} is FP-pinned but assigned to INT", node

    for node in partition.copies | partition.dups:
        if node in fp:
            yield f"copy/dup site {node!r} must be an INT node", node
        instr = rdg.instruction(node)
        has_def = bool(instr.defs) and not (
            instr.kind is OpKind.STORE
        )
        if node.part is Part.ADDR:
            yield f"address node {node!r} cannot be copied/duplicated", node
        elif not has_def:
            yield f"copy/dup site {node!r} defines no register", node
    for node in partition.dups:
        if not is_duplicable(rdg.instruction(node), node):
            yield f"{node!r} is not duplicable", node
        for parent in rdg.preds[node]:
            if parent == node:
                continue  # self-dependence satisfied by the twin itself
            if parent in fp or parent in partition.copies or parent in partition.dups:
                continue
            if _is_cut_edge(rdg, parent, node):
                continue
            yield (
                f"duplicated node {node!r} has parent {parent!r} unavailable in FPa",
                node,
            )
    for node in partition.back_copies:
        if node not in fp:
            yield f"back-copy site {node!r} must be an FPa node", node

    for src in rdg.nodes:
        for dst in rdg.succs[src]:
            src_fp = src in fp
            dst_fp = dst in fp
            if src_fp == dst_fp:
                continue
            if _is_cut_edge(rdg, src, dst):
                continue
            if not src_fp and dst_fp:
                if src not in partition.copies and src not in partition.dups:
                    yield f"uncompensated INT->FPa edge {src!r} -> {dst!r}", src
            else:
                if (src, dst) in rdg.convention_edges and src in partition.back_copies:
                    continue
                yield f"illegal FPa->INT edge {src!r} -> {dst!r}", src


def check_partition(partition: Partition) -> None:
    """Raise :class:`PartitionError` on the first violation found by
    :func:`iter_partition_violations`; silent when the partition is
    legal."""
    for message, _node in iter_partition_violations(partition):
        raise PartitionError(message)


def partition_stats(partition: Partition) -> dict[str, int]:
    """Static summary counts for reports and tests."""
    rdg = partition.rdg
    offloaded_instrs = {
        node.uid
        for node in partition.fp
        if node.part is Part.WHOLE and not rdg.instruction(node).info.fp_subsystem
    }
    return {
        "nodes": len(rdg.nodes),
        "fp_nodes": len(partition.fp),
        "offloaded_instructions": len(offloaded_instrs),
        "copies": len(partition.copies),
        "dups": len(partition.dups),
        "back_copies": len(partition.back_copies),
    }
