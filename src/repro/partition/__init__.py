"""Code partitioning — the paper's contribution.

Two schemes split a function's RDG into an INT partition and an FPa
partition:

* :func:`repro.partition.basic.basic_partition` — §5's basic scheme: no
  new instructions; undirected connected components containing a
  load/store address, call, return, or otherwise INT-pinned node go to
  INT, everything else to FPa.
* :func:`repro.partition.advanced.advanced_partition` — §6's advanced
  scheme: profile-driven cost model, copy instructions
  (``cp_to_comp``/``cp_from_comp``), code duplication, and
  calling-convention interaction.

:func:`repro.partition.rewrite.apply_partition` rewrites the function,
replacing offloaded opcodes with their ``.a`` twins, converting memory
ops whose data lives in the FP file to ``l.s``/``s.s``, and materializing
copies and duplicates.
"""

from repro.partition.partition import Partition, check_partition, partition_stats
from repro.partition.basic import basic_partition
from repro.partition.advanced import advanced_partition
from repro.partition.cost import CostParams, ExecutionProfile, estimate_profile
from repro.partition.copydup import CopyDupDecider, is_duplicable
from repro.partition.rewrite import apply_partition
from repro.partition.interproc import FpArgDecisions, decide_fp_arguments
from repro.partition.program import ProgramPartitionResult, partition_program
from repro.partition.report import (
    annotate_partition,
    offload_by_opcode,
    partition_summary_table,
)

__all__ = [
    "Partition",
    "check_partition",
    "partition_stats",
    "basic_partition",
    "advanced_partition",
    "CostParams",
    "ExecutionProfile",
    "estimate_profile",
    "CopyDupDecider",
    "is_duplicable",
    "apply_partition",
    "FpArgDecisions",
    "decide_fp_arguments",
    "ProgramPartitionResult",
    "partition_program",
    "annotate_partition",
    "offload_by_opcode",
    "partition_summary_table",
]
