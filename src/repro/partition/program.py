"""Whole-program partitioning orchestration.

Per-function partitioning plus, optionally, the interprocedural
FP-argument extension (§6.6 future work).  The published pipeline is::

    result = partition_program(program, scheme="advanced", profile=profile)

and with the extension::

    result = partition_program(program, scheme="advanced",
                               profile=profile, interprocedural=True)

Decisions must be made while every function's RDG is still valid, so all
partitions are computed first, then the interprocedural analysis runs,
then every function is rewritten.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import PartitionError, ReproError
from repro.ir.program import Program
from repro.ir.verify import verify_program
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.cost import CostParams, ExecutionProfile
from repro.partition.interproc import FpArgDecisions, decide_fp_arguments
from repro.partition.partition import Partition, partition_stats
from repro.partition.rewrite import RewriteStats, apply_partition


@dataclass(eq=False, slots=True)
class ProgramPartitionResult:
    """Everything produced by :func:`partition_program`."""

    partitions: dict[str, Partition] = field(default_factory=dict)
    rewrites: dict[str, RewriteStats] = field(default_factory=dict)
    stats: dict[str, dict[str, int]] = field(default_factory=dict)
    decisions: FpArgDecisions | None = None

    def total(self, key: str) -> int:
        """Sum a :func:`partition_stats` field over all functions
        (snapshotted before rewriting, which mutates the instructions
        the partitions reference)."""
        return sum(stats[key] for stats in self.stats.values())

    @property
    def copies_eliminated(self) -> int:
        return self.decisions.copies_eliminated() if self.decisions else 0


def _raise_on_lint_errors(result, stage: str) -> None:
    if result.ok:
        return
    from repro.lint.render import render_text

    raise ReproError(f"{stage} lint failed:\n{render_text(result)}")


def partition_program(
    program: Program,
    scheme: str = "advanced",
    profile: ExecutionProfile | None = None,
    params: CostParams | None = None,
    balance_limit: float | None = None,
    interprocedural: bool = False,
    lint: bool | None = None,
    certify: bool = True,
    static_profile: bool = False,
) -> ProgramPartitionResult:
    """Partition and rewrite every function of ``program`` in place.

    Args:
        program: Program to transform (virtual-register IR).
        scheme: ``"basic"`` or ``"advanced"``.
        profile: Basic-block profile for the advanced cost model.
        params: Cost parameters for the advanced scheme.
        balance_limit: Optional FPa load cap (§6.6 extension).
        interprocedural: Enable FP-argument passing (§6.6 extension;
            advanced scheme only — the basic scheme may not add copies,
            so it cannot exploit relaxed conventions).
        lint: Run the partition linter as a debug check: the
            partition-level rules before rewriting and the full
            dataflow rules after, raising :class:`ReproError` on any
            error diagnostic.  ``None`` (the default) enables linting
            when the ``REPRO_LINT`` environment variable is non-empty.
        certify: Audit every advanced partition with the independent
            §6.1 re-pricing (:func:`repro.analysis.certify.certify_partition`)
            before rewriting, raising :class:`PartitionError` when the
            partitioner's bookkeeping fails certification.  On by
            default; cheap relative to the rewrite itself.
        static_profile: Derive the profile statically with
            :func:`repro.analysis.freq.static_profile` instead of
            requiring a measured one (mutually exclusive with
            ``profile``).

    Returns:
        A :class:`ProgramPartitionResult`; the program is verified after
        rewriting.
    """
    if scheme not in ("basic", "advanced"):
        raise ReproError(f"unknown scheme {scheme!r}")
    if interprocedural and scheme != "advanced":
        raise ReproError("the interprocedural extension requires the advanced scheme")
    if static_profile:
        if profile is not None:
            raise ReproError("static_profile and an explicit profile are exclusive")
        from repro.analysis.freq import static_profile as estimate_static

        profile = estimate_static(program)
    if lint is None:
        lint = bool(os.environ.get("REPRO_LINT"))

    result = ProgramPartitionResult()
    for name, func in program.functions.items():
        if scheme == "basic":
            result.partitions[name] = basic_partition(func)
        else:
            result.partitions[name] = advanced_partition(
                func, profile=profile, params=params, balance_limit=balance_limit
            )
        result.stats[name] = partition_stats(result.partitions[name])

    if certify and scheme == "advanced":
        from repro.analysis.certify import certify_partition

        for name in program.functions:
            certificate = certify_partition(
                result.partitions[name], profile=profile, params=params
            )
            if not certificate.ok:
                details = "\n".join(f"  - {msg}" for msg, _ in certificate.violations)
                raise PartitionError(
                    f"partition of {name!r} failed independent profit "
                    f"certification:\n{details}"
                )

    if interprocedural:
        result.decisions = decide_fp_arguments(program, result.partitions)

    if lint:
        from repro.lint import lint_program, partition_rule_ids

        _raise_on_lint_errors(
            lint_program(
                program,
                partitions=result.partitions,
                profile=profile,
                params=params,
                scheme=scheme,
                rules=partition_rule_ids(),
            ),
            "pre-rewrite",
        )

    decisions = result.decisions
    for name, func in program.functions.items():
        kwargs = {}
        if decisions is not None:
            kwargs = dict(
                fp_params=decisions.fp_params.get(name),
                fp_call_args=decisions.fp_call_args.get(name),
                skip_back_copies=decisions.dropped_back_copies.get(name),
                skip_param_copies=decisions.dropped_param_copies.get(name),
            )
        result.rewrites[name] = apply_partition(
            func, result.partitions[name], **kwargs
        )
    verify_program(program)
    if lint:
        from repro.lint import lint_program

        _raise_on_lint_errors(
            lint_program(program, scheme=scheme), "post-rewrite"
        )
    return result
