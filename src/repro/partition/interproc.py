"""Interprocedural argument passing in FP registers (§6.6 future work).

The published schemes respect integer calling conventions strictly:
every actual argument computed in FPa needs a ``cp_from_comp`` at the
call site, and every formal parameter used in FPa needs a ``cp_to_comp``
in the callee.  The paper closes §6.6 with: "By performing
interprocedural analysis, it might be possible to reduce some of the
copy overheads across calls by passing integer arguments in
floating-point registers."

This module implements exactly that, conservatively.  Parameter ``i`` of
function ``g`` is passed in an FP register iff

1. *the callee wants it there*: ``g``'s formal-parameter node is a copy
   site whose register consumers all live in FPa (so the standard scheme
   would insert a ``cp_to_comp`` anyway and nothing in INT reads it), and
2. *every caller can supply it there*: at every call site of ``g``, all
   reaching definitions of the argument register are FPa nodes that
   write an FP register after rewriting (not inter-file copies).

When both hold, the callee's ``param`` is retargeted to the FP file (no
``cp_to_comp``), call sites pass the producer's FP register directly,
and producers whose *only* INT consumers were such call positions drop
their ``cp_from_comp`` — two dynamic copies saved per call.

Return values are deliberately left in integer registers (the paper only
suggests arguments; extending to returns would be symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reaching import ReachingDefinitions
from repro.ir.opcodes import OpKind
from repro.ir.program import Program
from repro.partition.partition import Partition
from repro.rdg.graph import Node, Part


@dataclass(eq=False, slots=True)
class FpArgDecisions:
    """Outcome of the interprocedural analysis.

    Attributes:
        fp_params: function name -> parameter indices passed in FP regs.
        fp_call_args: function name -> {call uid -> argument positions
            that must be rewritten to FP registers in that caller}.
        dropped_back_copies: function name -> FPa producer nodes whose
            ``cp_from_comp`` becomes unnecessary.
        dropped_param_copies: function name -> formal-parameter nodes
            whose ``cp_to_comp`` becomes unnecessary.
    """

    fp_params: dict[str, set[int]] = field(default_factory=dict)
    fp_call_args: dict[str, dict[int, set[int]]] = field(default_factory=dict)
    dropped_back_copies: dict[str, set[Node]] = field(default_factory=dict)
    dropped_param_copies: dict[str, set[Node]] = field(default_factory=dict)

    def copies_eliminated(self) -> int:
        """Static count of copy instructions the extension avoids."""
        return sum(len(v) for v in self.dropped_back_copies.values()) + sum(
            len(v) for v in self.dropped_param_copies.values()
        )


def _callee_wants_fp(partition: Partition, func) -> set[int]:
    """Parameter indices whose values are consumed only in FPa."""
    rdg = partition.rdg
    wanted: set[int] = set()
    for param in func.params():
        node = Node(param.uid, Part.WHOLE)
        if node not in partition.copies:
            continue  # no FPa consumer, or it is duplicated (params can't be)
        children = rdg.succs[node]
        if children and all(child in partition.fp for child in children):
            wanted.add(param.imm)
    return wanted


def _producers_of_argument(rdg, reaching, call_instr, position):
    """RDG nodes defining argument ``position`` of ``call_instr``."""
    producers = []
    for site in reaching.reaching_defs_of_use(call_instr, position):
        instr = rdg.instr_of[site.uid]
        part = Part.VALUE if instr.is_memory else Part.WHOLE
        producers.append((Node(site.uid, part), instr))
    return producers


def decide_fp_arguments(
    program: Program, partitions: dict[str, Partition]
) -> FpArgDecisions:
    """Run the interprocedural analysis over already-partitioned
    functions.  Partitions are not modified; the decisions feed
    :func:`repro.partition.rewrite.apply_partition`."""
    decisions = FpArgDecisions()
    reaching_cache = {
        name: ReachingDefinitions(program.functions[name]) for name in partitions
    }

    # candidate (callee, index) pairs, then veto per call site
    candidates: dict[str, set[int]] = {}
    for name, partition in partitions.items():
        func = program.functions[name]
        if name == program.entry:
            wanted = set()  # the entry takes no parameters anyway
        else:
            wanted = _callee_wants_fp(partition, func)
        if wanted:
            candidates[name] = wanted

    # collect all call sites per callee
    call_sites: dict[str, list[tuple[str, object]]] = {name: [] for name in candidates}
    for caller_name, partition in partitions.items():
        for instr in program.functions[caller_name].instructions():
            if instr.kind is OpKind.CALL and instr.target in call_sites:
                call_sites[instr.target].append((caller_name, instr))

    for callee_name, wanted in candidates.items():
        sites = call_sites[callee_name]
        if not sites:
            continue  # never called: leave convention unchanged
        for index in sorted(wanted):
            supported = True
            for caller_name, call_instr in sites:
                rdg = partitions[caller_name].rdg
                producers = _producers_of_argument(
                    rdg, reaching_cache[caller_name], call_instr, index
                )
                if not producers:
                    supported = False
                    break
                for node, instr in producers:
                    in_fpa = node in partitions[caller_name].fp
                    if not in_fpa or instr.kind is OpKind.COPY:
                        supported = False
                        break
                if not supported:
                    break
            if not supported:
                continue
            # commit the decision
            decisions.fp_params.setdefault(callee_name, set()).add(index)
            param_node = next(
                Node(p.uid, Part.WHOLE)
                for p in program.functions[callee_name].params()
                if p.imm == index
            )
            decisions.dropped_param_copies.setdefault(callee_name, set()).add(
                param_node
            )
            for caller_name, call_instr in sites:
                decisions.fp_call_args.setdefault(caller_name, {}).setdefault(
                    call_instr.uid, set()
                ).add(index)

    # producers whose cp_from_comp becomes unnecessary: every convention
    # edge they have targets an fp-arg position they now feed directly
    for caller_name, partition in partitions.items():
        per_call = decisions.fp_call_args.get(caller_name, {})
        if not per_call:
            continue
        rdg = partition.rdg
        reaching = reaching_cache[caller_name]
        dropped: set[Node] = set()
        for producer in partition.back_copies:
            needed = False
            for (src, dst) in rdg.convention_edges:
                if src != producer:
                    continue
                consumer = rdg.instr_of[dst.uid]
                if consumer.kind is not OpKind.CALL:
                    needed = True  # feeds a return value: copy still needed
                    break
                fp_positions = per_call.get(consumer.uid, set())
                feeding_positions = {
                    pos
                    for pos in range(len(consumer.uses))
                    if any(
                        site.uid == producer.uid
                        for site in reaching.reaching_defs_of_use(consumer, pos)
                    )
                }
                if not feeding_positions <= fp_positions:
                    needed = True
                    break
            if not needed:
                dropped.add(producer)
        if dropped:
            decisions.dropped_back_copies[caller_name] = dropped

    return decisions
