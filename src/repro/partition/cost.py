"""Cost model of the advanced partitioning scheme (paper §6.1).

The profitability of offloading depends on dynamic execution counts:

* ``Benefit  = sum_{v in S_c} n_{B(v)}`` — dynamic instructions gained
  by FPa,
* ``Overhead = o_copy * sum_{v in S_copy} n_{B(v)}
             + o_dupl * sum_{v in S_dupl} n_{B(v)}``,
* ``Profit   = Benefit - Overhead``.

``n_B`` comes from a basic-block execution profile when one is
available.  For unprofiled functions the paper's probabilistic estimate
is used: ``n_B = p_B * 5^{d_B}`` with branch directions assumed equally
likely and ``d_B`` the loop nesting depth.

The paper determined ``o_copy`` in [3, 6] and ``o_dupl`` in [1.5, 3]
empirically; the defaults here sit at the low end of those ranges, which
our sweep (``benchmarks/test_ablation_cost_params.py``) also finds best —
it is what makes duplicating a loop counter to offload a two-instruction
termination slice profitable, as in the paper's Figure 6.
``o_dupl < o_copy`` is required (§6.2): otherwise nothing would ever be
duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.loops import loop_nesting_depth
from repro.errors import PartitionError
from repro.ir.cfg import predecessors, reverse_postorder, successor_map
from repro.ir.function import Function


@dataclass(frozen=True, slots=True)
class CostParams:
    """Tunable overhead weights of the cost model.

    Attributes:
        o_copy: Overhead charged per dynamic copy instruction.
        o_dupl: Overhead charged per dynamic duplicated instruction.
    """

    o_copy: float = 3.0
    o_dupl: float = 1.5

    def __post_init__(self) -> None:
        if not self.o_dupl < self.o_copy:
            raise PartitionError(
                f"o_dupl ({self.o_dupl}) must be < o_copy ({self.o_copy}); "
                "otherwise no node is ever duplicated (§6.2)"
            )

    def as_dict(self) -> dict[str, float]:
        """JSON-able form, part of the benchmark cache key."""
        return {"o_copy": self.o_copy, "o_dupl": self.o_dupl}


@dataclass(eq=False, slots=True)
class ExecutionProfile:
    """Basic-block execution counts, possibly spanning many functions.

    Attributes:
        counts: ``(function name, block label) -> execution count``.
    """

    counts: dict[tuple[str, str], float] = field(default_factory=dict)

    def record(self, func_name: str, block_label: str, count: float = 1.0) -> None:
        key = (func_name, block_label)
        self.counts[key] = self.counts.get(key, 0.0) + count

    def covers(self, func_name: str) -> bool:
        """True if any block of ``func_name`` was executed."""
        return any(name == func_name for name, _ in self.counts)

    def block_count(self, func_name: str, block_label: str) -> float:
        return self.counts.get((func_name, block_label), 0.0)

    def for_function(self, func: Function) -> dict[str, float]:
        """Block label -> count for one function (0 for unexecuted)."""
        return {
            blk.label: self.block_count(func.name, blk.label) for blk in func.blocks
        }


def estimate_profile(func: Function) -> dict[str, float]:
    """The paper's probabilistic estimate for unprofiled functions:
    ``n_B = p_B * 5^{d_B}``.

    ``p_B`` is propagated through the acyclic condensation of the CFG
    (back edges ignored) assuming both directions of every branch are
    equally likely; the entry has probability 1.
    """
    depth = loop_nesting_depth(func)
    rpo = reverse_postorder(func)
    position = {label: i for i, label in enumerate(rpo)}
    succ = successor_map(func)
    preds = predecessors(func)

    prob: dict[str, float] = {label: 0.0 for label in rpo}
    if func.blocks:
        prob[func.entry.label] = 1.0
    for label in rpo:
        incoming = 0.0
        for p in preds[label]:
            if position.get(p, 1 << 30) < position[label]:  # forward edge only
                fanout = max(1, len(succ[p]))
                incoming += prob[p] / fanout
        if label != func.entry.label:
            prob[label] = incoming

    return {label: prob[label] * (5.0 ** depth[label]) for label in rpo}


def block_counts(
    func: Function, profile: ExecutionProfile | None
) -> dict[str, float]:
    """Per-block ``n_B`` for ``func``: measured when the profile covers
    the function, the probabilistic estimate otherwise (§6.1)."""
    if profile is not None and profile.covers(func.name):
        return profile.for_function(func)
    return estimate_profile(func)
