"""The advanced partitioning scheme (paper §6).

The algorithm has two phases over the RDG ``G``:

**Initial assignment.**  The LdSt slice and every other INT-pinned node
(calls, returns, formal parameters, jumps, integer multiply/divide,
byte-memory values) seed the INT partition; the partition is closed
backwards over register edges — if a node is in INT, so is its backward
slice, because the scheme only inserts copies *from* INT *to* FPa
(§6.3).  Two edge kinds are exempt from the closure: edges out of
pre-existing copy instructions (already legal crossings) and the
calling-convention edges into call/return nodes, which §6.4 allows to be
satisfied by a ``cp_from_comp`` — so actual-parameter computation starts
in FPa.

**Phase 1 — boundary expansion.**  Instructions just outside the INT
boundary are examined; for each candidate ``u`` the *loss* to FPa of
moving ``P`` = the FPa part of ``Backward-Slice(G, u)`` into INT is

``loss = sum_{v in P} term(v) + sum_{v in Q} delta(v)``

where ``term(v) = n_v + alpha(v)`` (``alpha`` charges a copy if ``v``
would still have FPa children), except actual-parameter producers whose
term is ``-copying_cost(v)`` (moving them *saves* a back-copy), and
``delta(v)`` credits boundary parents whose copy disappears.  Negative
loss expands the boundary; zero defers the decision to ``P``'s children.

**Phase 2 — component profitability.**  Copies and duplicates are
tentatively introduced for the remaining boundary (choosing per §6.2's
copy-vs-duplicate heuristic, with duplication demand propagating to
parents), the graph conceptually disconnects at those sites, and every
FPa connected component is priced with the §6.1 cost model.  Components
with ``Profit < 0`` are evicted to INT and their communication removed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import PartitionError
from repro.ir.function import Function
from repro.ir.opcodes import OpKind
from repro.partition.copydup import CopyDupDecider, is_duplicable
from repro.partition.cost import CostParams, ExecutionProfile, block_counts
from repro.partition.partition import Partition, check_partition
from repro.rdg.build import build_rdg
from repro.rdg.graph import RDG, Node, Part, Pin

_EPS = 1e-9


class _AdvancedPartitioner:
    """One run of the advanced scheme over a single function."""

    def __init__(
        self,
        func: Function,
        rdg: RDG,
        n_b: dict[str, float],
        params: CostParams,
    ):
        self.func = func
        self.rdg = rdg
        self.params = params
        self.decider = CopyDupDecider(rdg, n_b, params)
        self.int_set: set[Node] = set()
        self.copies: set[Node] = set()
        self.dups: set[Node] = set()

    # -- edge predicates ------------------------------------------------
    def _is_cut_src(self, node: Node) -> bool:
        """Out-edges of copy instructions are legal crossings."""
        return self.rdg.instruction(node).kind is OpKind.COPY

    def _is_conv(self, src: Node, dst: Node) -> bool:
        return (src, dst) in self.rdg.convention_edges

    def _real_children(self, node: Node):
        """Children over edges that constrain partitioning (no convention
        edges; sources that are copies never constrain)."""
        if self._is_cut_src(node):
            return
        for child in self.rdg.succs[node]:
            if not self._is_conv(node, child):
                yield child

    def _real_parents(self, node: Node):
        for parent in self.rdg.preds[node]:
            if self._is_cut_src(parent):
                continue
            if self._is_conv(parent, node):
                continue
            yield parent

    # -- initial assignment ----------------------------------------------
    def initial_int(self) -> None:
        """Seed INT with pinned nodes and close backwards."""
        work = [n for n in self.rdg.nodes if self.rdg.pin.get(n) is Pin.INT]
        while work:
            node = work.pop()
            if node in self.int_set:
                continue
            if self.rdg.pin.get(node) is Pin.FP:
                raise PartitionError(
                    f"{self.func.name}: FP-pinned node {node!r} required in INT"
                )
            self.int_set.add(node)
            work.extend(self._real_parents(node))

    # -- phase 1 -----------------------------------------------------------
    def _fpa_backward_slice(self, seed: Node) -> set[Node]:
        """FPa nodes of ``Backward-Slice(G, seed)`` (stops at INT)."""
        out: set[Node] = set()
        work = [seed]
        while work:
            node = work.pop()
            if node in out or node in self.int_set:
                continue
            out.add(node)
            work.extend(self._real_parents(node))
        return out

    def _is_actual_param_producer(self, node: Node) -> bool:
        """True if ``node`` feeds a call argument or return value via a
        convention edge (and so, if left in FPa, needs a cp_from_comp).

        A producer that is itself a copy instruction (a pre-existing
        ``cp_from_comp`` from an int/float conversion) already delivers
        its result into the INT file — its edge is a cut edge, no new
        back-copy is needed (or even expressible: its def is INT-class).
        """
        if self.rdg.instruction(node).kind is OpKind.COPY:
            return False
        return any(
            self._is_conv(node, child) for child in self.rdg.succs[node]
        )

    def _loss_of_moving(self, slice_p: set[Node]) -> float:
        """The §6.3 ``loss`` of assigning ``slice_p`` to INT."""
        rdg = self.rdg
        decider = self.decider
        loss = 0.0
        for v in slice_p:
            if self._is_actual_param_producer(v):
                # Moving an actual-parameter producer to INT removes the
                # cp_from_comp it would otherwise need (§6.4).
                loss -= decider.copying_cost[v]
                continue
            loss += decider.node_count(v)
            # alpha(v): if v keeps FPa children outside P it must still
            # be copied/duplicated after moving to INT.
            keeps_fpa_child = any(
                c not in self.int_set and c not in slice_p
                for c in self._real_children(v)
            )
            if keeps_fpa_child:
                loss += decider.comm_cost(v)
        # delta over boundary parents Q of P
        for v in self._boundary_parents(slice_p):
            fpa_children = [
                c for c in self._real_children(v) if c not in self.int_set
            ]
            if fpa_children and all(c in slice_p for c in fpa_children):
                loss -= decider.comm_cost(v)
        return loss

    def _boundary_parents(self, slice_p: set[Node]) -> set[Node]:
        """INT nodes with a child inside ``slice_p`` (the set Q)."""
        out: set[Node] = set()
        for v in slice_p:
            for parent in self.rdg.preds[v]:
                if parent in self.int_set and not self._is_cut_src(parent):
                    out.add(parent)
        return out

    def phase1(self) -> None:
        """Expand the INT boundary over unprofitable FPa nodes."""
        work: deque[Node] = deque()
        queued: set[Node] = set()
        processed: set[Node] = set()

        def enqueue_children_of_boundary() -> None:
            for node in self.int_set:
                if self._is_cut_src(node):
                    continue
                for child in self._real_children(node):
                    if child not in self.int_set and child not in queued:
                        queued.add(child)
                        work.append(child)

        enqueue_children_of_boundary()
        while work:
            u = work.popleft()
            queued.discard(u)
            if u in self.int_set or u in processed:
                continue
            if self.rdg.pin.get(u) is Pin.FP:
                continue
            processed.add(u)
            slice_p = self._fpa_backward_slice(u)
            if any(self.rdg.pin.get(v) is Pin.FP for v in slice_p):
                continue  # immovable
            loss = self._loss_of_moving(slice_p)
            if loss < -_EPS:
                self.int_set |= slice_p
                processed.clear()  # loss values changed; allow re-examination
                for v in slice_p:
                    for child in self._real_children(v):
                        if child not in self.int_set and child not in queued:
                            queued.add(child)
                            work.append(child)
            elif abs(loss) <= _EPS:
                # Defer: a bigger portion of the graph may decide better.
                for v in slice_p:
                    for child in self._real_children(v):
                        if (
                            child not in self.int_set
                            and child not in queued
                            and child not in processed
                        ):
                            queued.add(child)
                            work.append(child)

    # -- communication sites ---------------------------------------------
    def compute_copy_dup_sets(self) -> None:
        """Line 16: derive S_copy / S_dupl from the stabilized boundary,
        propagating duplication demand to parents (§6.2)."""
        self.copies.clear()
        self.dups.clear()
        demand: deque[Node] = deque()
        for node in self.int_set:
            if self._is_cut_src(node):
                continue
            if any(c not in self.int_set for c in self._real_children(node)):
                demand.append(node)
        while demand:
            v = demand.popleft()
            if v in self.copies or v in self.dups:
                continue
            duplicable = is_duplicable(self.rdg.instruction(v), v) and not any(
                self._is_cut_src(p) for p in self.rdg.preds[v]
            )
            if duplicable and self.decider.should_duplicate(v):
                self.dups.add(v)
                for parent in self._real_parents(v):
                    if parent in self.int_set and parent != v:
                        demand.append(parent)
            else:
                self.copies.add(v)

    def back_copy_sites(self) -> set[Node]:
        """FPa producers of call arguments / return values."""
        return {
            node
            for node in self.rdg.nodes
            if node not in self.int_set and self._is_actual_param_producer(node)
        }

    # -- phase 2 -----------------------------------------------------------
    def _fpa_components(self) -> list[set[Node]]:
        """Connected components of the FPa side (FPa-FPa edges only)."""
        seen: set[Node] = set()
        comps: list[set[Node]] = []
        for start in self.rdg.nodes:
            if start in seen or start in self.int_set:
                continue
            comp: set[Node] = set()
            stack = [start]
            seen.add(start)
            while stack:
                node = stack.pop()
                comp.add(node)
                for other in self.rdg.succs[node] + self.rdg.preds[node]:
                    if other not in seen and other not in self.int_set:
                        seen.add(other)
                        stack.append(other)
            comps.append(comp)
        return comps

    def _feeders_of(self, comp: set[Node]) -> tuple[set[Node], set[Node]]:
        """Copy and duplicate sites feeding ``comp``, including the
        transitive parents demanded by duplicates."""
        feed_copy: set[Node] = set()
        feed_dup: set[Node] = set()
        work: deque[Node] = deque()
        for site in self.copies | self.dups:
            if any(c in comp for c in self._real_children(site)):
                work.append(site)
        while work:
            site = work.popleft()
            if site in feed_copy or site in feed_dup:
                continue
            if site in self.dups:
                feed_dup.add(site)
                for parent in self._real_parents(site):
                    if parent in self.copies or parent in self.dups:
                        work.append(parent)
            else:
                feed_copy.add(site)
        return feed_copy, feed_dup

    def _component_profit(self, comp: set[Node], back_sites: set[Node]) -> float:
        """The §6.1 Profit of keeping ``comp`` in FPa."""
        decider = self.decider
        benefit = sum(
            decider.node_count(v)
            for v in comp
            if v.part is Part.WHOLE and self.rdg.pin.get(v) is not Pin.FP
        )
        feed_copy, feed_dup = self._feeders_of(comp)
        overhead = self.params.o_copy * sum(
            decider.node_count(v) for v in feed_copy
        ) + self.params.o_dupl * sum(decider.node_count(v) for v in feed_dup)
        overhead += self.params.o_copy * sum(
            decider.node_count(v) for v in comp if v in back_sites
        )
        return benefit - overhead

    def rebalance(self, limit: float) -> None:
        """Load-balance extension (the paper's §6.6 future work).

        The published schemes greedily maximize the FPa partition, which
        the paper notes can backfire: functions with little memory work
        move wholesale to FPa and leave INT idle (§6.6), and on FP
        programs the offloaded integer work competes with the float work
        (§7.5).  This optional post-pass evicts the least profit-dense
        *movable* FPa components until the FPa side's dynamic weight is
        at most ``limit`` of the whole program's.
        """
        decider = self.decider

        def weight(nodes) -> float:
            return sum(
                decider.node_count(v) for v in nodes if v.part is Part.WHOLE
            )

        total = weight(self.rdg.nodes)
        if total <= 0.0:
            return
        back_sites = self.back_copy_sites()
        while True:
            fpa_nodes = [n for n in self.rdg.nodes if n not in self.int_set]
            if weight(fpa_nodes) <= limit * total:
                break
            candidates = [
                comp
                for comp in self._fpa_components()
                if not any(self.rdg.pin.get(v) is Pin.FP for v in comp)
                and weight(comp) > 0.0
            ]
            if not candidates:
                break
            density = lambda comp: self._component_profit(comp, back_sites) / weight(comp)
            victim = min(candidates, key=density)
            self.int_set |= victim
        self.compute_copy_dup_sets()

    def phase2(self) -> None:
        """Evict unprofitable FPa components to INT."""
        back_sites = self.back_copy_sites()
        for comp in self._fpa_components():
            if any(self.rdg.pin.get(v) is Pin.FP for v in comp):
                continue  # true FP code: never evicted
            feed_copy, feed_dup = self._feeders_of(comp)
            uses_communication = bool(feed_copy or feed_dup) or any(
                v in back_sites for v in comp
            )
            if not uses_communication:
                continue  # a basic-scheme-style free component
            if self._component_profit(comp, back_sites) < -_EPS:
                self.int_set |= comp
        # communication sets must reflect the post-eviction boundary
        self.compute_copy_dup_sets()

    # -- driver ------------------------------------------------------------
    def run(self, balance_limit: float | None = None) -> Partition:
        self.initial_int()
        self.phase1()
        self.compute_copy_dup_sets()
        self.phase2()
        if balance_limit is not None:
            self.rebalance(balance_limit)
        fp = {n for n in self.rdg.nodes if n not in self.int_set}
        partition = Partition(
            rdg=self.rdg,
            fp=fp,
            copies=set(self.copies),
            dups=set(self.dups),
            back_copies=self.back_copy_sites(),
            scheme="advanced",
        )
        check_partition(partition)
        return partition


@dataclass(eq=False, slots=True)
class CommunicationRecount:
    """Communication sets and component profits recomputed from scratch
    for an existing partition (see :func:`recount_communication`).

    Attributes:
        copies: Expected ``S_copy`` for the partition's INT/FPa boundary.
        dups: Expected ``S_dupl``.
        back_copies: Expected back-copy sites (§6.4).
        component_profits: One ``(component, profit, uses_communication)``
            triple per FPa connected component, priced with the §6.1
            model against the recomputed communication sets.
    """

    copies: set[Node]
    dups: set[Node]
    back_copies: set[Node]
    component_profits: list[tuple[frozenset[Node], float, bool]]


def recount_communication(
    partition: Partition,
    profile: ExecutionProfile | None = None,
    params: CostParams | None = None,
) -> CommunicationRecount:
    """Recompute S_copy / S_dupl / back-copies and per-component Profit
    for ``partition`` from first principles.

    The partition's INT/FPa node assignment is taken as given; the
    communication sets and the §6.1 cost bookkeeping are re-derived with
    a fresh :class:`~repro.partition.copydup.CopyDupDecider` built from
    ``profile``/``params``.  The lint cost-consistency rule compares the
    result against the sets stored in the partition to flag drifted
    cost-model caches; it is also useful for debugging hand-edited
    partitions.  The partition's RDG must still be valid (pre-rewrite).
    """
    rdg = partition.rdg
    if params is None:
        params = CostParams()
    n_b = block_counts(rdg.func, profile)
    engine = _AdvancedPartitioner(rdg.func, rdg, n_b, params)
    engine.int_set = {node for node in rdg.nodes if node not in partition.fp}
    engine.compute_copy_dup_sets()
    back = engine.back_copy_sites()
    profits: list[tuple[frozenset[Node], float, bool]] = []
    for comp in engine._fpa_components():
        feed_copy, feed_dup = engine._feeders_of(comp)
        uses_communication = bool(feed_copy or feed_dup) or any(
            v in back for v in comp
        )
        profits.append(
            (frozenset(comp), engine._component_profit(comp, back), uses_communication)
        )
    return CommunicationRecount(
        copies=set(engine.copies),
        dups=set(engine.dups),
        back_copies=back,
        component_profits=profits,
    )


def advanced_partition(
    func: Function,
    rdg: RDG | None = None,
    profile: ExecutionProfile | None = None,
    params: CostParams | None = None,
    balance_limit: float | None = None,
) -> Partition:
    """Partition ``func`` with the advanced scheme.

    Args:
        func: Function to partition (virtual-register IR).
        rdg: Pre-built RDG, rebuilt if None.
        profile: Basic-block execution profile; the probabilistic
            ``p_B * 5^{d_B}`` estimate is used for uncovered functions.
        params: Cost-model weights (defaults: ``o_copy=3, o_dupl=1.5``).
        balance_limit: Optional load-balance cap — evict the least
            profit-dense FPa components until the FPa side holds at most
            this fraction of the function's dynamic weight (the paper's
            §6.6 future-work improvement; ``None`` reproduces the
            published greedy behaviour).

    Returns:
        A legal :class:`Partition` with copy/duplicate/back-copy sets.
    """
    if rdg is None:
        rdg = build_rdg(func)
    if params is None:
        params = CostParams()
    n_b = block_counts(func, profile)
    return _AdvancedPartitioner(func, rdg, n_b, params).run(balance_limit=balance_limit)
