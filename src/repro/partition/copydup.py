"""Copy-versus-duplicate decision heuristic (paper §6.2).

When an INT node's value is needed in FPa the compiler can either insert
a ``cp_to_comp`` (communication) or re-execute the node in FPa with its
``.a`` twin (duplication).  Duplicating ``v`` forces each of its parents
to be available in FPa too — copied or duplicated in turn — so the cost
of duplication fans out along the backward slice.  The paper prices
this with an iterative fixed point:

* ``copying_cost(v) = o_copy * n_{B(v)}``
* ``dupl_cost(v) = o_dupl * n_{B(v)}
                 + sum_{u in parents(v)} min(copying_cost(u), dupl_cost(u))``

with ``dupl_cost`` initialized to infinity.  ``v`` is duplicated iff
``dupl_cost(v) < copying_cost(v)``.  Nodes with no ``.a`` twin — loads,
call results, formal parameters, multiply/divide — are never duplicable
and always fall back to a copy.
"""

from __future__ import annotations

import math

from repro.ir.instructions import Instruction
from repro.ir.opcodes import OpKind, fpa_twin
from repro.partition.cost import CostParams
from repro.rdg.graph import RDG, Node, Part


def is_duplicable(instr: Instruction, node: Node) -> bool:
    """True if the node can be re-executed in FPa with an ``.a`` twin.

    Only pure whole-instruction computations qualify: duplicating a load
    would add a memory access (changing program behaviour under the
    machine model where FPa cannot address memory), and ``param``/
    ``call`` values exist only in the INT file by convention.
    """
    if node.part is not Part.WHOLE:
        return False
    if instr.kind not in (OpKind.ALU,):
        return False
    return fpa_twin(instr.op) is not None


class CopyDupDecider:
    """Precomputed copy/duplicate decisions for every node of an RDG.

    Args:
        rdg: The function's RDG.
        n_b: Per-block execution counts (``block label -> n_B``).
        params: Cost-model weights.
    """

    def __init__(self, rdg: RDG, n_b: dict[str, float], params: CostParams):
        self.rdg = rdg
        self.params = params
        self._count = {node: n_b.get(rdg.block(node), 0.0) for node in rdg.nodes}
        self.copying_cost: dict[Node, float] = {
            node: params.o_copy * self._count[node] for node in rdg.nodes
        }
        self.dupl_cost: dict[Node, float] = {node: math.inf for node in rdg.nodes}
        self._solve()

    def _solve(self) -> None:
        """Iterate the dupl-cost equation to its (monotone) fixed point."""
        changed = True
        while changed:
            changed = False
            for node in self.rdg.nodes:
                if not is_duplicable(self.rdg.instruction(node), node):
                    continue
                total = self.params.o_dupl * self._count[node]
                for parent in self.rdg.preds[node]:
                    if parent == node:
                        # Loop-carried self-dependence (e.g. i = i + 1):
                        # the duplicate's own FPa twin supplies the value,
                        # so the self-edge costs nothing.
                        continue
                    total += min(self.copying_cost[parent], self.dupl_cost[parent])
                if total < self.dupl_cost[node] - 1e-12:
                    self.dupl_cost[node] = total
                    changed = True

    def node_count(self, node: Node) -> float:
        """``n_{B(node)}`` — dynamic execution count of the node."""
        return self._count[node]

    def should_duplicate(self, node: Node) -> bool:
        """The §6.2 decision: duplicate iff strictly cheaper than copying."""
        return self.dupl_cost[node] < self.copying_cost[node]

    def comm_cost(self, node: Node) -> float:
        """Cost of making ``node``'s value available in FPa by the cheaper
        of the two mechanisms."""
        return min(self.copying_cost[node], self.dupl_cost[node])
