"""Machine configurations (paper Table 1).

Two standard machines:

* :func:`four_way` — 4-way fetch/decode/retire, 2 INT + 2 FP units,
  32-entry windows, 32 in-flight, 48+48 physical registers, one
  load/store port.
* :func:`eight_way` — 8-way, 4 INT + 4 FP units, 64 in-flight, 80+80
  physical registers, two load/store ports.

Shared parameters: 64 KB 2-way I-cache with 128-byte lines, 32 KB 2-way
D-cache with 32-byte lines, both 1-cycle hit / 6-cycle miss penalty;
McFarling gshare with 32 K 2-bit counters and 15-bit global history;
unconditional control flow predicted perfectly; 6-cycle multiply,
12-cycle divide, everything else single-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Set-associative cache geometry and timing."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_cycles: int = 1
    miss_penalty: int = 6

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise SimulationError("cache size not divisible by assoc * line size")
        n_sets = self.size_bytes // (self.assoc * self.line_bytes)
        if n_sets & (n_sets - 1):
            raise SimulationError("cache set count must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True, slots=True)
class PredictorConfig:
    """gshare geometry: 2-bit counters indexed by pc XOR global history."""

    counter_bits: int = 2
    table_entries: int = 32 * 1024
    history_bits: int = 15
    perfect_unconditional: bool = True


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """One machine of Table 1."""

    name: str
    fetch_width: int
    decode_width: int
    retire_width: int
    int_window: int
    fp_window: int
    max_inflight: int
    int_units: int
    fp_units: int
    ls_ports: int
    phys_int: int
    phys_fp: int
    mul_latency: int = 6
    div_latency: int = 12
    mispredict_redirect: int = 1
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 128)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 2, 32)
    )
    predictor: PredictorConfig = field(default_factory=PredictorConfig)

    @property
    def rename_int(self) -> int:
        """Physical integer registers available for renaming (beyond the
        32 architectural ones)."""
        return self.phys_int - 32

    @property
    def rename_fp(self) -> int:
        return self.phys_fp - 32


def four_way(**overrides) -> MachineConfig:
    """The paper's 4-way (2 int + 2 fp) machine."""
    base = dict(
        name="4-way",
        fetch_width=4,
        decode_width=4,
        retire_width=4,
        int_window=32,
        fp_window=32,
        max_inflight=32,
        int_units=2,
        fp_units=2,
        ls_ports=1,
        phys_int=48,
        phys_fp=48,
    )
    base.update(overrides)
    return MachineConfig(**base)


def eight_way(**overrides) -> MachineConfig:
    """The paper's 8-way (4 int + 4 fp) machine."""
    base = dict(
        name="8-way",
        fetch_width=8,
        decode_width=8,
        retire_width=8,
        int_window=32,
        fp_window=32,
        max_inflight=64,
        int_units=4,
        fp_units=4,
        ls_ports=2,
        phys_int=80,
        phys_fp=80,
    )
    base.update(overrides)
    return MachineConfig(**base)
