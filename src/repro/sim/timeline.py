"""Pipeline timeline rendering.

With ``TimingSimulator(config, record_timeline=True)`` the simulator
records fetch/dispatch/issue/complete/retire cycles per instruction;
:func:`render_timeline` draws the classic pipeline diagram::

    cycle          1234567890
    addu  v1,...   FDIC.R
    lw    v2,...   FDI..CR
    bne   ...      F.DIC..R

Letters: F fetched, D dispatched, I issued, C completed, R retired;
dots are in-flight wait cycles.  Intended for small traces — examples,
debugging, teaching — not for benchmark-sized runs.
"""

from __future__ import annotations

from repro.ir.printer import print_instruction
from repro.runtime.trace import TraceEntry
from repro.sim.config import MachineConfig
from repro.sim.pipeline import TimingSimulator
from repro.sim.stats import SimStats


def simulate_with_timeline(
    trace: list[TraceEntry],
    config: MachineConfig,
    perfect_branches: bool = False,
) -> tuple[SimStats, list]:
    """Run a trace recording per-instruction stage timestamps.

    Returns ``(stats, timeline)`` where each timeline element has
    ``fetched_at``, ``dispatched_at``, ``issued_at``, ``complete`` and
    ``retired_at`` cycle numbers plus the originating ``entry``.
    """
    simulator = TimingSimulator(
        config, perfect_branches=perfect_branches, record_timeline=True
    )
    stats = simulator.run(trace)
    return stats, simulator.timeline


def render_timeline(timeline: list, max_instructions: int = 40, width: int = 64) -> str:
    """Render recorded stage timestamps as a text pipeline diagram."""
    if not timeline:
        return "(empty timeline)"
    shown = timeline[:max_instructions]
    first = min(dyn.fetched_at for dyn in shown if dyn.fetched_at >= 0)
    last = max(dyn.retired_at for dyn in shown if dyn.retired_at >= 0)
    span = min(last - first + 1, width)

    label_width = 28
    header = " " * label_width + "".join(
        str((first + i) % 10) for i in range(span)
    )
    lines = [f"{'cycle %d..%d' % (first, first + span - 1):{label_width}s}", header]

    for dyn in shown:
        text = print_instruction(dyn.entry.instr)
        if len(text) > label_width - 2:
            text = text[: label_width - 3] + "…"
        row = [" "] * span

        def mark(cycle: int, letter: str) -> None:
            index = cycle - first
            if 0 <= index < span:
                row[index] = letter

        start = dyn.fetched_at
        end = dyn.retired_at if dyn.retired_at >= 0 else first + span - 1
        for cycle in range(max(start, first), min(end, first + span - 1) + 1):
            row[cycle - first] = "."
        mark(dyn.fetched_at, "F")
        mark(dyn.dispatched_at, "D")
        mark(dyn.issued_at, "I")
        if dyn.complete is not None:
            mark(dyn.complete, "C")
        mark(dyn.retired_at, "R")
        lines.append(f"{text:{label_width}s}{''.join(row)}")
    if len(timeline) > max_instructions:
        lines.append(f"... ({len(timeline) - max_instructions} more instructions)")
    return "\n".join(lines)
