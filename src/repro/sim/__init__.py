"""Cycle-level timing simulation of the partitioned superscalar machine.

The simulator is trace-driven: it replays the dynamic instruction trace
produced by :mod:`repro.runtime` through an out-of-order pipeline with

* partitioned INT / FP(a) issue windows and functional units,
* a gshare (McFarling) branch predictor,
* set-associative I- and D-caches,
* load/store ports on the INT subsystem only, with loads waiting for
  prior store addresses,
* physical-register and in-flight-instruction limits,
* in-order retirement,

all parameterized per the paper's Table 1 (4-way and 8-way machines).
A *conventional* baseline needs no special mode: simulating the
unpartitioned program on the same machine leaves the FP subsystem idle,
exactly as in the paper.
"""

from repro.sim.config import CacheConfig, PredictorConfig, MachineConfig, four_way, eight_way
from repro.sim.cache import Cache
from repro.sim.branch_pred import GSharePredictor, PerfectPredictor
from repro.sim.pipeline import TimingSimulator, simulate_trace
from repro.sim.stats import SimStats
from repro.sim.timeline import render_timeline, simulate_with_timeline

__all__ = [
    "CacheConfig",
    "PredictorConfig",
    "MachineConfig",
    "four_way",
    "eight_way",
    "Cache",
    "GSharePredictor",
    "PerfectPredictor",
    "TimingSimulator",
    "simulate_trace",
    "SimStats",
    "render_timeline",
    "simulate_with_timeline",
]
