"""Trace-driven out-of-order pipeline model.

The model replays a dynamic trace through a superscalar pipeline with the
stage structure of Figure 1: shared fetch/decode, then partitioned INT
and FP(a) subsystems, each with its own issue window and functional
units.  All memory instructions flow through the INT subsystem's
load/store port(s) regardless of which register file their data targets
(``l.s``/``s.s`` included), matching the paper's machine.

Per simulated cycle, in reverse pipeline order:

1. **Retire** — in order from the ROB head, up to the retire width;
   frees rename registers.
2. **Issue** — oldest-first out of each subsystem's window: an entry
   issues when its producers have completed, a functional unit of its
   class is free, and (loads/stores) a load/store port is free.  Loads
   additionally wait until every older in-flight store has computed its
   address, and until any older store to the same word has completed
   (store-to-load data dependence).
3. **Dispatch** — from the fetch buffer into the windows, up to the
   decode width, blocked by window space, the in-flight cap, and free
   rename registers of the destination's register class.
4. **Fetch** — up to the fetch width from the trace, stopping at taken
   control flow; I-cache misses stall fetch; conditional branches are
   predicted with gshare and a misprediction stalls fetch until the
   branch resolves (wrong-path work is not simulated, its cost is the
   fetch bubble — the standard trace-driven approximation).

The loop consumes a :class:`~repro.trace.pack.PackedTrace` — latency
and control classes pre-resolved per static row, dependence tokens as
dense integers — so the per-dynamic-instruction work is array indexing
and integer dict lookups.  A plain ``list[TraceEntry]`` is accepted too
and packed on entry (the compatibility adapter the differential tests
pin against).
"""

from __future__ import annotations

from collections import deque

from repro.errors import CheckpointError, SimulationError
from repro.progress import report_progress
from repro.runtime.trace import TraceEntry
from repro.sim.branch_pred import GSharePredictor, PerfectPredictor
from repro.sim.cache import Cache
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats
from repro.trace.pack import (
    CTRL_BRANCH,
    CTRL_JUMP,
    LAT_DIV,
    LAT_LOAD,
    LAT_MUL,
    LAT_STORE,
    PackedTrace,
    pack_entries,
)


class _Dyn:
    """Pipeline bookkeeping for one dynamic instruction.

    Static properties (subsystem side, latency class, rename-register
    demand) arrive pre-resolved from the packed trace's static table —
    the constructor only copies integers.
    """

    __slots__ = (
        "entry",
        "seq",
        "producers",
        "complete",
        "issued",
        "lat_class",
        "is_load",
        "is_store",
        "is_mem",
        "fp_side",
        "int_defs",
        "fp_defs",
        "mem_addr",
        "fetched_at",
        "dispatched_at",
        "issued_at",
        "retired_at",
    )

    def __init__(
        self,
        seq: int,
        fp_side: bool,
        lat_class: int,
        int_defs: int,
        fp_defs: int,
        mem_addr: int,
        entry: TraceEntry | None,
    ):
        self.seq = seq
        self.fp_side = fp_side
        self.lat_class = lat_class
        self.is_load = lat_class == LAT_LOAD
        self.is_store = lat_class == LAT_STORE
        self.is_mem = self.is_load or self.is_store
        self.int_defs = int_defs
        self.fp_defs = fp_defs
        self.mem_addr = mem_addr
        self.entry = entry
        self.producers: list[_Dyn] = []
        self.complete: int | None = None
        self.issued = False
        self.fetched_at = -1
        self.dispatched_at = -1
        self.issued_at = -1
        self.retired_at = -1


class TimingSimulator:
    """Simulates one trace on one machine configuration."""

    def __init__(
        self,
        config: MachineConfig,
        perfect_branches: bool = False,
        record_timeline: bool = False,
        checkpoint=None,
    ):
        self.config = config
        self.icache = Cache(config.icache)
        self.dcache = Cache(config.dcache)
        self.perfect_branches = perfect_branches
        if perfect_branches:
            self.predictor = PerfectPredictor(config.predictor)
        else:
            self.predictor = GSharePredictor(config.predictor)
        self.stats = SimStats()
        self.record_timeline = record_timeline
        #: optional :class:`~repro.checkpoint.store.CheckpointSlot`;
        #: when set, the run loop snapshots every ``slot.interval``
        #: cycles and restores from the slot before starting
        self.checkpoint = checkpoint
        if checkpoint is not None and record_timeline:
            raise CheckpointError(
                "record_timeline cannot be combined with checkpointing: "
                "the timeline keeps every dynamic instruction alive, "
                "which a bounded snapshot cannot capture"
            )
        #: cycle the last restore resumed from (None = cold start)
        self.resumed_from: int | None = None
        #: cycle of the last published snapshot (None = none yet)
        self.last_checkpoint: int | None = None
        #: per-instruction stage timestamps, populated when
        #: ``record_timeline`` is set; see :mod:`repro.sim.timeline`
        self.timeline: list[_Dyn] = []

    # ------------------------------------------------------------------
    def run(
        self,
        trace: "list[TraceEntry] | PackedTrace",
        max_cycles: int | None = None,
    ) -> SimStats:
        """Replay ``trace``; returns the populated :class:`SimStats`.

        ``trace`` is either a :class:`~repro.trace.pack.PackedTrace`
        (the fast path) or a list of :class:`TraceEntry` objects, which
        is packed here; both produce bit-identical statistics.
        """
        if isinstance(trace, PackedTrace):
            return self._run_packed(trace, None, max_cycles)
        entries = trace if isinstance(trace, list) else list(trace)
        return self._run_packed(pack_entries(entries), entries, max_cycles)

    def _run_packed(
        self,
        packed: PackedTrace,
        entries: list[TraceEntry] | None,
        max_cycles: int | None,
    ) -> SimStats:
        config = self.config
        stats = self.stats
        n = packed.n
        if n == 0:
            return stats

        # column handles: per-dynamic work is indexing into these
        ids = packed.instr_ids
        mem_col = packed.mem_addr
        taken_col = packed.taken
        roff, rtok = packed.read_offsets, packed.read_tokens
        woff, wtok = packed.write_offsets, packed.write_tokens
        row_pc = packed.pcs
        row_fp = packed.fp_side
        row_lat = packed.row_lat
        row_ctrl = packed.row_ctrl
        row_int_defs = packed.int_defs
        row_fp_defs = packed.fp_defs

        fetch_index = 0
        fetch_buffer: deque[_Dyn] = deque()
        fetch_buffer_cap = 2 * config.fetch_width
        fetch_stall_until = 0
        blocking_branch: _Dyn | None = None

        int_window: list[_Dyn] = []
        fp_window: list[_Dyn] = []
        rob: deque[_Dyn] = deque()
        last_writer: dict[int, _Dyn] = {}
        inflight_stores: list[_Dyn] = []

        free_int = config.rename_int
        free_fp = config.rename_fp
        retired = 0
        now = 0
        hit_cycles = config.icache.hit_cycles
        limit = max_cycles if max_cycles is not None else 200 * n + 10_000

        slot = self.checkpoint
        interval = slot.interval if slot is not None else 0
        last_saved = 0
        if slot is not None:
            saved = slot.load()
            if saved is not None:
                try:
                    (
                        now, fetch_index, retired, fetch_stall_until,
                        free_int, free_fp, blocking_branch, fetch_buffer,
                        int_window, fp_window, rob, last_writer,
                        inflight_stores,
                    ) = self._restore_state(saved, packed, entries)
                except CheckpointError:
                    # stale or inconsistent snapshot: cold restart, and
                    # discard whatever the partial restore touched
                    self.icache = Cache(config.icache)
                    self.dcache = Cache(config.dcache)
                    if self.perfect_branches:
                        self.predictor = PerfectPredictor(config.predictor)
                    else:
                        self.predictor = GSharePredictor(config.predictor)
                    self.stats = stats = SimStats()
                else:
                    stats = self.stats
                    last_saved = now
                    self.resumed_from = now
                    report_progress(cycles=now, retired=retired,
                                    resumed_from_cycle=now)

        while retired < n:
            # snapshot at cycle boundaries: the state below is "end of
            # cycle `now`", so a resumed run replays from `now + 1` on
            if interval and now > last_saved and now % interval == 0:
                slot.save(self._snapshot_state(
                    n, now, fetch_index, retired, fetch_stall_until,
                    free_int, free_fp, blocking_branch, fetch_buffer,
                    int_window, fp_window, rob, last_writer,
                    inflight_stores,
                ))
                last_saved = now
                self.last_checkpoint = now
                report_progress(checkpoint_cycle=now)
            if now & 1023 == 0:
                report_progress(cycles=now, retired=retired)
            now += 1
            if now > limit:
                raise SimulationError(
                    f"simulation exceeded {limit} cycles with "
                    f"{retired}/{n} instructions retired"
                )

            # ---- retire ------------------------------------------------
            width = config.retire_width
            while rob and width:
                head = rob[0]
                if head.complete is None or head.complete > now:
                    break
                rob.popleft()
                head.retired_at = now
                free_int += head.int_defs
                free_fp += head.fp_defs
                if head.is_store:
                    inflight_stores.remove(head)
                retired += 1
                width -= 1

            # ---- issue ---------------------------------------------------
            int_issued_now = self._issue_int(int_window, inflight_stores, now)
            fp_issued_now = self._issue_fp(fp_window, now)
            if int_issued_now:
                stats.int_busy_cycles += 1
            if fp_issued_now:
                stats.fp_busy_cycles += 1
                if not int_issued_now:
                    stats.int_idle_fp_busy_cycles += 1
            if blocking_branch is not None and blocking_branch.complete is not None:
                fetch_stall_until = max(
                    fetch_stall_until,
                    blocking_branch.complete + config.mispredict_redirect,
                )
                blocking_branch = None

            # ---- dispatch ------------------------------------------------
            width = config.decode_width
            dispatched_any = False
            while fetch_buffer and width:
                dyn = fetch_buffer[0]
                window = fp_window if dyn.fp_side else int_window
                window_cap = config.fp_window if dyn.fp_side else config.int_window
                if len(window) >= window_cap:
                    break
                if len(rob) >= config.max_inflight:
                    break
                if dyn.int_defs > free_int or dyn.fp_defs > free_fp:
                    break
                fetch_buffer.popleft()
                dyn.dispatched_at = now
                free_int -= dyn.int_defs
                free_fp -= dyn.fp_defs
                s = dyn.seq
                for ti in range(roff[s], roff[s + 1]):
                    producer = last_writer.get(rtok[ti])
                    if producer is not None and (
                        producer.complete is None or producer.complete > now
                    ):
                        dyn.producers.append(producer)
                for ti in range(woff[s], woff[s + 1]):
                    last_writer[wtok[ti]] = dyn
                window.append(dyn)
                rob.append(dyn)
                if dyn.is_store:
                    inflight_stores.append(dyn)
                width -= 1
                dispatched_any = True
            if fetch_buffer and not dispatched_any:
                stats.dispatch_stall_cycles += 1

            # ---- fetch ---------------------------------------------------
            if now < fetch_stall_until or blocking_branch is not None:
                if fetch_index < n:
                    stats.fetch_stall_cycles += 1
                continue
            width = config.fetch_width
            while width and fetch_index < n and len(fetch_buffer) < fetch_buffer_cap:
                sid = ids[fetch_index]
                pc = row_pc[sid]
                latency = self.icache.access(pc)
                if latency > hit_cycles:
                    fetch_stall_until = now + (latency - hit_cycles)
                    break
                dyn = _Dyn(
                    fetch_index,
                    row_fp[sid] == 1,
                    row_lat[sid],
                    row_int_defs[sid],
                    row_fp_defs[sid],
                    mem_col[fetch_index],
                    entries[fetch_index] if entries is not None else None,
                )
                dyn.fetched_at = now
                if self.record_timeline:
                    self.timeline.append(dyn)
                fetch_index += 1
                fetch_buffer.append(dyn)
                width -= 1
                ctrl = row_ctrl[sid]
                if ctrl == CTRL_BRANCH:
                    raw = taken_col[dyn.seq]
                    taken = None if raw < 0 else raw == 1
                    correct = self.predictor.update(pc, taken)
                    stats.branches += 1
                    if not correct:
                        stats.branch_mispredicts += 1
                        blocking_branch = dyn
                        break
                    if taken:
                        break  # cannot fetch past a taken branch this cycle
                elif ctrl == CTRL_JUMP:
                    break  # taken control flow, perfectly predicted

        stats.cycles = now
        stats.retired = retired
        stats.icache_hits = self.icache.hits
        stats.icache_misses = self.icache.misses
        stats.dcache_hits = self.dcache.hits
        stats.dcache_misses = self.dcache.misses
        if slot is not None:
            slot.clear()
        report_progress(cycles=now, retired=retired)
        return stats

    # ------------------------------------------------------------------
    def _snapshot_state(
        self,
        n: int,
        now: int,
        fetch_index: int,
        retired: int,
        fetch_stall_until: int,
        free_int: int,
        free_fp: int,
        blocking_branch: "_Dyn | None",
        fetch_buffer: "deque[_Dyn]",
        int_window: "list[_Dyn]",
        fp_window: "list[_Dyn]",
        rob: "deque[_Dyn]",
        last_writer: "dict[int, _Dyn]",
        inflight_stores: "list[_Dyn]",
    ) -> dict:
        """The run loop's live state as a JSON-able dict (cycle boundary).

        The dynamic-instruction closure is small by construction:

        * every *incomplete* instruction is in the ROB (it cannot retire
          before completing), so the ROB plus the fetch buffer covers
          all live bookkeeping;
        * a ``last_writer`` entry whose writer completed at or before
          ``now`` is semantically dead — dispatch only records producers
          that are still incomplete — so those entries are pruned here,
          which keeps snapshots bounded by the machine's in-flight
          capacity instead of the token-table size;
        * producers referenced from the ROB that already retired only
          matter for their ``complete`` timestamp, so they are captured
          as bare records with their own producer lists pruned.
        """
        primary: dict[int, _Dyn] = {}
        for dyn in rob:
            primary[dyn.seq] = dyn
        for dyn in fetch_buffer:
            primary[dyn.seq] = dyn
        if blocking_branch is not None:
            primary[blocking_branch.seq] = blocking_branch
        writer_items = sorted(
            (token, dyn.seq)
            for token, dyn in last_writer.items()
            if dyn.complete is None or dyn.complete > now
        )
        for _, seq in writer_items:
            if seq not in primary:
                raise CheckpointError(
                    f"live writer seq {seq} missing from ROB/fetch buffer"
                )
        extras: dict[int, _Dyn] = {}
        for dyn in primary.values():
            for producer in dyn.producers:
                if producer.seq not in primary and producer.seq not in extras:
                    if producer.complete is None:
                        raise CheckpointError(
                            f"incomplete producer seq {producer.seq} "
                            f"missing from ROB"
                        )
                    extras[producer.seq] = producer

        def record(dyn: _Dyn, full: bool) -> dict:
            return {
                "seq": dyn.seq,
                "complete": dyn.complete,
                "issued": dyn.issued,
                "t": [dyn.fetched_at, dyn.dispatched_at,
                      dyn.issued_at, dyn.retired_at],
                "producers": [p.seq for p in dyn.producers] if full else [],
            }

        dyn_records = [record(primary[seq], True) for seq in sorted(primary)]
        dyn_records += [record(extras[seq], False) for seq in sorted(extras)]
        return {
            "n": n,
            "now": now,
            "fetch_index": fetch_index,
            "retired": retired,
            "fetch_stall_until": fetch_stall_until,
            "free_int": free_int,
            "free_fp": free_fp,
            "blocking_branch": (
                None if blocking_branch is None else blocking_branch.seq
            ),
            "fetch_buffer": [dyn.seq for dyn in fetch_buffer],
            "int_window": [dyn.seq for dyn in int_window],
            "fp_window": [dyn.seq for dyn in fp_window],
            "rob": [dyn.seq for dyn in rob],
            "inflight_stores": [dyn.seq for dyn in inflight_stores],
            "last_writer": [list(item) for item in writer_items],
            "dyns": dyn_records,
            "stats": self.stats.to_counters(),
            "icache": self.icache.state_dict(),
            "dcache": self.dcache.state_dict(),
            "predictor": {
                "class": type(self.predictor).__name__,
                "state": self.predictor.state_dict(),
            },
        }

    def _restore_state(
        self,
        state: dict,
        packed: PackedTrace,
        entries: "list[TraceEntry] | None",
    ) -> tuple:
        """Rebuild the run loop's live state from a decoded snapshot.

        Raises :class:`CheckpointError` on any inconsistency; structural
        validation happens before ``self`` is mutated, but a failure in
        the final apply phase can leave caches partially loaded — the
        caller resets them on the cold-restart path.
        """
        try:
            n = int(state["n"])
            now = int(state["now"])
            fetch_index = int(state["fetch_index"])
            retired = int(state["retired"])
            fetch_stall_until = int(state["fetch_stall_until"])
            free_int = int(state["free_int"])
            free_fp = int(state["free_fp"])
            predictor_doc = state["predictor"]
            dyn_records = state["dyns"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint state: {exc}")
        if n != packed.n:
            raise CheckpointError(
                f"checkpoint is for a {n}-instruction trace, "
                f"this trace has {packed.n}"
            )
        if not (0 <= retired <= n and 0 <= fetch_index <= n and now >= 0):
            raise CheckpointError("checkpoint cursors out of range")
        if predictor_doc.get("class") != type(self.predictor).__name__:
            raise CheckpointError(
                f"checkpoint predictor {predictor_doc.get('class')!r} does "
                f"not match {type(self.predictor).__name__}"
            )

        ids = packed.instr_ids
        mem_col = packed.mem_addr
        row_fp = packed.fp_side
        row_lat = packed.row_lat
        row_int_defs = packed.int_defs
        row_fp_defs = packed.fp_defs
        dyns: dict[int, _Dyn] = {}
        try:
            for rec in dyn_records:
                seq = int(rec["seq"])
                if not 0 <= seq < n or seq in dyns:
                    raise CheckpointError(f"bad dynamic record seq {seq}")
                sid = ids[seq]
                dyn = _Dyn(
                    seq,
                    row_fp[sid] == 1,
                    row_lat[sid],
                    row_int_defs[sid],
                    row_fp_defs[sid],
                    mem_col[seq],
                    entries[seq] if entries is not None else None,
                )
                complete = rec["complete"]
                dyn.complete = None if complete is None else int(complete)
                dyn.issued = bool(rec["issued"])
                (dyn.fetched_at, dyn.dispatched_at,
                 dyn.issued_at, dyn.retired_at) = (int(t) for t in rec["t"])
                dyns[seq] = dyn
            for rec in dyn_records:
                dyn = dyns[int(rec["seq"])]
                dyn.producers = [dyns[int(p)] for p in rec["producers"]]

            def pick(seqs) -> list[_Dyn]:
                return [dyns[int(seq)] for seq in seqs]

            fetch_buffer = deque(pick(state["fetch_buffer"]))
            int_window = pick(state["int_window"])
            fp_window = pick(state["fp_window"])
            rob = deque(pick(state["rob"]))
            inflight_stores = pick(state["inflight_stores"])
            raw_branch = state["blocking_branch"]
            blocking_branch = None if raw_branch is None else dyns[int(raw_branch)]
            last_writer = {
                int(token): dyns[int(seq)]
                for token, seq in state["last_writer"]
            }
            stats_counters = {
                key: int(value) for key, value in state["stats"].items()
            }
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"inconsistent checkpoint state: {exc}")

        # apply phase: structure validated, now load the stateful models
        self.icache.load_state(state["icache"])
        self.dcache.load_state(state["dcache"])
        self.predictor.load_state(predictor_doc["state"])
        restored_stats = SimStats.from_counters(stats_counters)
        for field in self.stats.to_counters():
            setattr(self.stats, field, getattr(restored_stats, field))
        return (
            now, fetch_index, retired, fetch_stall_until, free_int, free_fp,
            blocking_branch, fetch_buffer, int_window, fp_window, rob,
            last_writer, inflight_stores,
        )

    # ------------------------------------------------------------------
    def _latency(self, dyn: _Dyn) -> int:
        lat = dyn.lat_class
        if lat == LAT_LOAD:
            return self.dcache.access(dyn.mem_addr)
        if lat == LAT_STORE:
            self.dcache.access(dyn.mem_addr)
            return 1
        if lat == LAT_MUL:
            return self.config.mul_latency
        if lat == LAT_DIV:
            return self.config.div_latency
        return 1

    @staticmethod
    def _ready(dyn: _Dyn, now: int) -> bool:
        for producer in dyn.producers:
            if producer.complete is None or producer.complete > now:
                return False
        return True

    def _issue_int(
        self, window: list[_Dyn], inflight_stores: list[_Dyn], now: int
    ) -> int:
        """Issue from the INT window; returns number issued."""
        budget = self.config.int_units
        ls_budget = self.config.ls_ports
        issued = 0
        stats = self.stats
        if not window:
            return 0
        oldest_unissued_store = None
        for store in inflight_stores:
            if not store.issued:
                oldest_unissued_store = store.seq
                break
        remaining: list[_Dyn] = []
        for dyn in window:
            if budget == 0:
                remaining.append(dyn)
                continue
            if dyn.is_mem and ls_budget == 0:
                remaining.append(dyn)
                continue
            if not self._ready(dyn, now):
                remaining.append(dyn)
                continue
            if dyn.is_load:
                if (
                    oldest_unissued_store is not None
                    and oldest_unissued_store < dyn.seq
                ):
                    remaining.append(dyn)
                    continue
                conflict = False
                word = dyn.mem_addr >> 2
                for store in inflight_stores:
                    if store.seq > dyn.seq:
                        break
                    if (
                        store.mem_addr >> 2 == word
                        and (store.complete is None or store.complete > now)
                    ):
                        conflict = True
                        break
                if conflict:
                    remaining.append(dyn)
                    continue
            dyn.issued = True
            dyn.issued_at = now
            dyn.complete = now + self._latency(dyn)
            if dyn.is_store and oldest_unissued_store == dyn.seq:
                oldest_unissued_store = None
                for store in inflight_stores:
                    if not store.issued:
                        oldest_unissued_store = store.seq
                        break
            budget -= 1
            if dyn.is_mem:
                ls_budget -= 1
                if dyn.is_load:
                    stats.loads += 1
                else:
                    stats.stores += 1
            issued += 1
            stats.int_issued += 1
        window[:] = remaining
        return issued

    def _issue_fp(self, window: list[_Dyn], now: int) -> int:
        """Issue from the FP window; returns number issued."""
        budget = self.config.fp_units
        issued = 0
        if not window:
            return 0
        remaining: list[_Dyn] = []
        for dyn in window:
            if budget == 0 or not self._ready(dyn, now):
                remaining.append(dyn)
                continue
            dyn.issued = True
            dyn.issued_at = now
            dyn.complete = now + self._latency(dyn)
            budget -= 1
            issued += 1
            self.stats.fp_issued += 1
        window[:] = remaining
        return issued

    # ------------------------------------------------------------------


def simulate_trace(
    trace: "list[TraceEntry] | PackedTrace",
    config: MachineConfig,
    perfect_branches: bool = False,
) -> SimStats:
    """Convenience wrapper: run ``trace`` on a fresh simulator."""
    return TimingSimulator(config, perfect_branches=perfect_branches).run(trace)
