"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(eq=False, slots=True)
class SimStats:
    """Counters produced by one timing-simulation run.

    The derived properties (IPC, offload fraction, subsystem utilization)
    are what the experiment harness reports.
    """

    cycles: int = 0
    retired: int = 0
    int_issued: int = 0
    fp_issued: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0
    int_busy_cycles: int = 0
    fp_busy_cycles: int = 0
    int_idle_fp_busy_cycles: int = 0
    fetch_stall_cycles: int = 0
    dispatch_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def fp_fraction(self) -> float:
        """Fraction of retired instructions that executed in the FP/FPa
        subsystem — the paper's offload metric."""
        return self.fp_issued / self.retired if self.retired else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    @property
    def icache_miss_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_misses / total if total else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        total = self.dcache_hits + self.dcache_misses
        return self.dcache_misses / total if total else 0.0

    @property
    def int_idle_while_fp_busy_fraction(self) -> float:
        """Of the cycles where FPa executed something, the fraction where
        the INT subsystem sat idle (the paper's load-imbalance metric,
        §7.3)."""
        if not self.fp_busy_cycles:
            return 0.0
        return self.int_idle_fp_busy_cycles / self.fp_busy_cycles

    def to_counters(self) -> dict[str, int]:
        """Raw counters only — a lossless, JSON-able round trip for the
        benchmark cache (unlike :meth:`as_dict`, which mixes in derived
        ratios)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_counters(cls, counters: dict[str, int]) -> "SimStats":
        """Rebuild stats from :meth:`to_counters` output.  Unknown keys
        (from a newer schema) are ignored; missing ones default to 0."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in counters.items() if k in known})

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary (counters + derived) for reports."""
        return {
            "cycles": self.cycles,
            "retired": self.retired,
            "ipc": self.ipc,
            "fp_fraction": self.fp_fraction,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "branch_accuracy": self.branch_accuracy,
            "icache_miss_rate": self.icache_miss_rate,
            "dcache_miss_rate": self.dcache_miss_rate,
            "int_busy_cycles": self.int_busy_cycles,
            "fp_busy_cycles": self.fp_busy_cycles,
            "int_idle_while_fp_busy": self.int_idle_while_fp_busy_fraction,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "dispatch_stall_cycles": self.dispatch_stall_cycles,
        }
