"""Branch predictors.

The paper's machines use McFarling's gshare: a table of 2-bit saturating
counters indexed by the branch PC XORed with the global branch history.
Unconditional control flow (jumps, calls, returns) is predicted
perfectly, as in Table 1.
"""

from __future__ import annotations

from repro.sim.config import PredictorConfig


class GSharePredictor:
    """gshare with 2-bit counters and global history."""

    __slots__ = ("config", "_table", "_history", "_history_mask", "_index_mask",
                 "predictions", "mispredictions")

    def __init__(self, config: PredictorConfig | None = None):
        self.config = config or PredictorConfig()
        self._table = [1] * self.config.table_entries  # weakly not-taken
        self._history = 0
        self._history_mask = (1 << self.config.history_bits) - 1
        self._index_mask = self.config.table_entries - 1
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train on the actual ``taken`` outcome, update global
        history, and return whether the prediction was correct."""
        index = self._index(pc)
        counter = self._table[index]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        else:
            if counter > 0:
                self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.predictions += 1
        correct = predicted == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def state_dict(self) -> dict:
        """Mutable state (counters, history) as JSON-able data."""
        return {
            "table": list(self._table),
            "history": self._history,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (geometry must match)."""
        from repro.errors import CheckpointError

        table = state.get("table")
        if not isinstance(table, list) or len(table) != len(self._table):
            raise CheckpointError(
                f"predictor state has {len(table) if isinstance(table, list) else '?'} "
                f"counters, config expects {len(self._table)}"
            )
        self._table = [int(counter) for counter in table]
        self._history = int(state["history"])
        self.predictions = int(state["predictions"])
        self.mispredictions = int(state["mispredictions"])


class PerfectPredictor:
    """Oracle predictor (used by ablations)."""

    __slots__ = ("predictions", "mispredictions")

    def __init__(self, config: PredictorConfig | None = None):
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:  # pragma: no cover - trivially true
        return True

    def update(self, pc: int, taken: bool) -> bool:
        self.predictions += 1
        return True

    def state_dict(self) -> dict:
        return {
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def load_state(self, state: dict) -> None:
        self.predictions = int(state["predictions"])
        self.mispredictions = int(state["mispredictions"])

    @property
    def accuracy(self) -> float:
        return 1.0
