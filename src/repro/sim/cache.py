"""Set-associative LRU cache model.

Timing-only (no data): an access returns its latency and updates tag
state.  Used for both the I-cache (per fetch group) and the D-cache
(per load/store issue).
"""

from __future__ import annotations

from repro.sim.config import CacheConfig


class Cache:
    """One cache level.

    LRU is tracked per set with an ordered list of tags
    (most-recently-used last); set counts are small (2-way in the
    paper's machines) so list operations are cheap.
    """

    __slots__ = (
        "config",
        "_sets",
        "_offset_bits",
        "_index_mask",
        "hits",
        "misses",
    )

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = config.n_sets - 1
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Access ``addr``; returns latency in cycles (hit time, or hit
        time plus miss penalty) and updates tag/LRU state."""
        line = addr >> self._offset_bits
        index = line & self._index_mask
        tag = line >> (self._index_mask.bit_length())
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return self.config.hit_cycles
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.assoc:
            ways.pop(0)
        return self.config.hit_cycles + self.config.miss_penalty

    def probe(self, addr: int) -> bool:
        """True if ``addr`` currently hits (no state change)."""
        line = addr >> self._offset_bits
        index = line & self._index_mask
        tag = line >> (self._index_mask.bit_length())
        return tag in self._sets[index]

    def state_dict(self) -> dict:
        """Mutable state (tag/LRU arrays, counters) as JSON-able data.

        Together with :meth:`load_state` this makes the cache
        checkpointable: geometry lives in ``config`` and is re-derived,
        only the replay-dependent state is captured.
        """
        return {
            "sets": [list(ways) for ways in self._sets],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (geometry must match)."""
        from repro.errors import CheckpointError

        sets = state.get("sets")
        if not isinstance(sets, list) or len(sets) != len(self._sets):
            raise CheckpointError(
                f"cache state has {len(sets) if isinstance(sets, list) else '?'} "
                f"sets, config expects {len(self._sets)}"
            )
        self._sets = [[int(tag) for tag in ways] for ways in sets]
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
