"""The functional interpreter.

Executes an IR :class:`~repro.ir.program.Program` to completion with
MIPS-like semantics: 32-bit wrapping integer arithmetic, truncating
division, sparse byte/word memory, and the explicit-operand call model
(``call``/``param``/``ret``).

A run can simultaneously collect a basic-block execution profile (the
cost model's input) and a dynamic trace (the timing simulator's input).
Per-function code is precompiled into flat instruction arrays with
resolved jump targets and global addresses, keeping the dispatch loop
tight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError, FuelExhausted
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.program import Program
from repro.partition.cost import ExecutionProfile
from repro.progress import report_progress
from repro.runtime.state import MachineState, s32
from repro.runtime.trace import ProgramLayout, Subsystem, TraceEntry

# ---------------------------------------------------------------------------
# opcode semantics
# ---------------------------------------------------------------------------


def _div(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    q = abs(a) // abs(b)
    return s32(-q if (a < 0) != (b < 0) else q)


def _rem(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer remainder by zero")
    return s32(a - _div(a, b) * b)


def _u32(a: int) -> int:
    return a & 0xFFFFFFFF


def _cvt_w_s(a: float) -> int:
    # MIPS cvt.w.s: non-finite inputs don't trap, they produce the IEEE
    # invalid-operation default (saturated max for +/-inf, 0 for NaN);
    # finite values truncate and wrap like the rest of the integer ALU
    if a != a:  # NaN
        return 0
    if a == float("inf"):
        return 0x7FFFFFFF
    if a == float("-inf"):
        return -0x80000000
    return s32(int(a))


_ALU = {
    Opcode.ADDU: lambda a, b: s32(a + b),
    Opcode.SUBU: lambda a, b: s32(a - b),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: s32(a ^ b),
    Opcode.NOR: lambda a, b: s32(~(a | b)),
    Opcode.SLT: lambda a, b: int(a < b),
    Opcode.SLTU: lambda a, b: int(_u32(a) < _u32(b)),
    Opcode.SLLV: lambda a, b: s32(a << (b & 31)),
    Opcode.SRLV: lambda a, b: s32(_u32(a) >> (b & 31)),
    Opcode.SRAV: lambda a, b: s32(a >> (b & 31)),
    Opcode.ADDIU: lambda a, b: s32(a + b),
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XORI: lambda a, b: s32(a ^ b),
    Opcode.SLTI: lambda a, b: int(a < b),
    Opcode.SLTIU: lambda a, b: int(_u32(a) < _u32(b)),
    Opcode.SLL: lambda a, b: s32(a << (b & 31)),
    Opcode.SRL: lambda a, b: s32(_u32(a) >> (b & 31)),
    Opcode.SRA: lambda a, b: s32(a >> (b & 31)),
    Opcode.LUI: lambda a, b: s32(b << 16),
    Opcode.LI: lambda a, b: b,
    Opcode.MOVE: lambda a, b: a,
    Opcode.MULT: lambda a, b: s32(a * b),
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    # floating point
    Opcode.ADD_S: lambda a, b: a + b,
    Opcode.SUB_S: lambda a, b: a - b,
    Opcode.MUL_S: lambda a, b: a * b,
    Opcode.DIV_S: lambda a, b: a / b if b != 0.0 else float("inf") if a > 0 else float("-inf") if a < 0 else float("nan"),
    Opcode.NEG_S: lambda a, b: -a,
    Opcode.MOV_S: lambda a, b: a,
    Opcode.LI_S: lambda a, b: float(b),
    Opcode.CVT_S_W: lambda a, b: float(a),
    Opcode.CVT_W_S: lambda a, b: _cvt_w_s(a),
    # copies
    Opcode.CP_TO_COMP: lambda a, b: a,
    Opcode.CP_FROM_COMP: lambda a, b: a,
}
# FPa twins share the integer semantics
_ALU.update(
    {
        Opcode.ADDU_A: _ALU[Opcode.ADDU],
        Opcode.SUBU_A: _ALU[Opcode.SUBU],
        Opcode.AND_A: _ALU[Opcode.AND],
        Opcode.OR_A: _ALU[Opcode.OR],
        Opcode.XOR_A: _ALU[Opcode.XOR],
        Opcode.SLT_A: _ALU[Opcode.SLT],
        Opcode.SLTU_A: _ALU[Opcode.SLTU],
        Opcode.SLLV_A: _ALU[Opcode.SLLV],
        Opcode.SRAV_A: _ALU[Opcode.SRAV],
        Opcode.ADDIU_A: _ALU[Opcode.ADDIU],
        Opcode.ANDI_A: _ALU[Opcode.ANDI],
        Opcode.SLTI_A: _ALU[Opcode.SLTI],
        Opcode.SLTIU_A: _ALU[Opcode.SLTIU],
        Opcode.SLL_A: _ALU[Opcode.SLL],
        Opcode.SRL_A: _ALU[Opcode.SRL],
        Opcode.SRA_A: _ALU[Opcode.SRA],
        Opcode.LI_A: _ALU[Opcode.LI],
        Opcode.MOVE_A: _ALU[Opcode.MOVE],
    }
)

_BRANCH = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLEZ: lambda a, b: a <= 0,
    Opcode.BGTZ: lambda a, b: a > 0,
    Opcode.BLTZ: lambda a, b: a < 0,
    Opcode.BGEZ: lambda a, b: a >= 0,
    Opcode.BEQ_S: lambda a, b: a == b,
    Opcode.BNE_S: lambda a, b: a != b,
    Opcode.BLT_S: lambda a, b: a < b,
    Opcode.BLE_S: lambda a, b: a <= b,
}
_BRANCH.update(
    {
        Opcode.BEQ_A: _BRANCH[Opcode.BEQ],
        Opcode.BNE_A: _BRANCH[Opcode.BNE],
        Opcode.BLEZ_A: _BRANCH[Opcode.BLEZ],
        Opcode.BLTZ_A: _BRANCH[Opcode.BLTZ],
    }
)


# ---------------------------------------------------------------------------
# precompiled function code
# ---------------------------------------------------------------------------


class _Code:
    """Flattened, target-resolved form of one function."""

    __slots__ = ("func", "instrs", "start_of", "block_start_label", "resolved_imm")

    def __init__(self, func: Function, program: Program):
        self.func = func
        self.instrs: list[Instruction] = []
        self.start_of: dict[str, int] = {}
        self.block_start_label: list[str | None] = []
        self.resolved_imm: list[int | float | None] = []
        for blk in func.blocks:
            self.start_of[blk.label] = len(self.instrs)
            first = True
            for instr in blk.instructions:
                self.instrs.append(instr)
                self.block_start_label.append(blk.label if first else None)
                first = False
                imm = instr.imm
                if isinstance(imm, str):
                    imm = program.global_address(imm)
                self.resolved_imm.append(imm)
            if first:  # empty block still needs a profile point
                self.instrs.append(Instruction(Opcode.NOP, uid=-2))
                self.block_start_label.append(blk.label)
                self.resolved_imm.append(None)


class _Activation:
    """One function activation: registers plus a return point."""

    __slots__ = ("code", "regs", "args", "frame_id", "index", "call_instr", "sp_restore")

    def __init__(self, code: _Code, args: list, frame_id: int):
        self.code = code
        self.regs: dict[str, int | float] = {}
        self.args = args
        self.frame_id = frame_id
        self.index = 0
        self.call_instr: Instruction | None = None
        self.sp_restore = 0


@dataclass(eq=False, slots=True)
class RunResult:
    """Outcome of one program run."""

    value: int | None
    instructions: int
    profile: ExecutionProfile
    trace: list[TraceEntry] | None
    state: MachineState


class Interpreter:
    """Executes a program; see :func:`run_program` for the usual entry."""

    def __init__(self, program: Program):
        program.layout()
        self.program = program
        self.layout = ProgramLayout(program)
        self._code: dict[str, _Code] = {}

    def code_of(self, name: str) -> _Code:
        code = self._code.get(name)
        if code is None:
            code = _Code(self.program.function(name), self.program)
            self._code[name] = code
        return code

    def run(
        self,
        entry: str | None = None,
        fuel: int = 50_000_000,
        collect_trace: bool = False,
        profile: ExecutionProfile | None = None,
    ) -> RunResult:
        """Run to completion (the entry function's ``ret``).

        Args:
            entry: Function to start in (defaults to the program entry).
            fuel: Dynamic-instruction budget; exceeded -> FuelExhausted.
            collect_trace: Whether to record a full dynamic trace.
            profile: Profile to accumulate into (fresh one if None).

        Returns:
            A :class:`RunResult`.
        """
        program = self.program
        state = MachineState(program)
        if profile is None:
            profile = ExecutionProfile()
        trace: list[TraceEntry] | None = [] if collect_trace else None
        layout_pc = self.layout.pc_of

        entry_name = entry or program.entry
        next_frame = 0
        act = _Activation(self.code_of(entry_name), [], next_frame)
        next_frame += 1
        stack = [act]
        profile.record(entry_name, act.code.func.entry.label)

        executed = 0
        memory = state.memory
        result_value: int | None = None

        while True:
            code = act.code
            instrs = code.instrs
            index = act.index
            if index >= len(instrs):
                raise ExecutionError(
                    f"fell off the end of function {code.func.name}"
                )
            instr = instrs[index]
            op = instr.op
            kind = instr.kind

            if instr.uid == -2:  # synthetic NOP for an empty block
                act.index += 1
                nxt = act.index
                if nxt < len(instrs) and code.block_start_label[nxt]:
                    profile.record(code.func.name, code.block_start_label[nxt])
                continue

            executed += 1
            if executed > fuel:
                raise FuelExhausted(
                    f"exceeded fuel of {fuel} dynamic instructions"
                )
            if executed & 65535 == 0:
                report_progress(executed=executed)

            regs = act.regs
            entry_trace: TraceEntry | None = None
            if trace is not None:
                reads = tuple(
                    (act.frame_id, r.name)
                    for r in instr.uses
                    if r.name != "$zero" and r.name != "$sp"
                )
                writes = tuple((act.frame_id, r.name) for r in instr.defs)
                entry_trace = TraceEntry(
                    instr=instr,
                    pc=layout_pc[(code.func.name, instr.uid)],
                    subsystem=Subsystem.FP if instr.info.fp_subsystem else Subsystem.INT,
                    reads=reads,
                    writes=writes,
                )
                trace.append(entry_trace)

            def read(reg):
                name = reg.name
                if name == "$zero":
                    return 0
                if name == "$sp":
                    return state.sp
                try:
                    return regs[name]
                except KeyError:
                    raise ExecutionError(
                        f"{code.func.name}: read of undefined register {name}"
                    ) from None

            next_index = index + 1

            if kind is OpKind.ALU or kind is OpKind.MUL or kind is OpKind.DIV or kind is OpKind.COPY:
                uses = instr.uses
                n = len(uses)
                if n == 2:
                    a, b = read(uses[0]), read(uses[1])
                elif n == 1:
                    a, b = read(uses[0]), code.resolved_imm[index]
                else:
                    a, b = 0, code.resolved_imm[index]
                regs[instr.defs[0].name] = _ALU[op](a, b)
            elif kind is OpKind.LOAD:
                addr = read(instr.uses[0]) + (code.resolved_imm[index] or 0)
                if op is Opcode.LW or op is Opcode.LS:
                    value = memory.load_word(addr)
                elif op is Opcode.LB:
                    value = memory.load_byte(addr, signed=True)
                else:  # LBU
                    value = memory.load_byte(addr, signed=False)
                regs[instr.defs[0].name] = value
                if entry_trace is not None:
                    entry_trace.mem_addr = addr
            elif kind is OpKind.STORE:
                value = read(instr.uses[0])
                addr = read(instr.uses[1]) + (code.resolved_imm[index] or 0)
                if op is Opcode.SB:
                    memory.store_byte(addr, value)
                else:
                    memory.store_word(addr, value)
                if entry_trace is not None:
                    entry_trace.mem_addr = addr
            elif kind is OpKind.BRANCH:
                uses = instr.uses
                a = read(uses[0])
                b = read(uses[1]) if len(uses) == 2 else 0
                taken = _BRANCH[op](a, b)
                if entry_trace is not None:
                    entry_trace.taken = taken
                if taken:
                    next_index = code.start_of[instr.target]
                    profile.record(code.func.name, instr.target)
                    act.index = next_index
                    continue
            elif kind is OpKind.JUMP:
                next_index = code.start_of[instr.target]
                profile.record(code.func.name, instr.target)
                act.index = next_index
                continue
            elif kind is OpKind.PARAM:
                regs[instr.defs[0].name] = act.args[instr.imm]
                if entry_trace is not None:
                    entry_trace.reads = ((act.frame_id, "@args"),)
            elif kind is OpKind.CALL:
                args = [read(r) for r in instr.uses]
                callee = self.code_of(instr.target)
                act.index = index  # resume here; RET advances past it
                new_act = _Activation(callee, args, next_frame)
                next_frame += 1
                new_act.call_instr = instr
                new_act.sp_restore = state.sp
                state.sp -= callee.func.frame_size
                stack.append(new_act)
                if entry_trace is not None:
                    entry_trace.writes = ((new_act.frame_id, "@args"),)
                profile.record(instr.target, callee.func.entry.label)
                act = new_act
                continue
            elif kind is OpKind.RET:
                value = read(instr.uses[0]) if instr.uses else None
                state.sp = act.sp_restore
                finished = stack.pop()
                if not stack:
                    result_value = value
                    break
                caller = stack[-1]
                call_instr = finished.call_instr
                if call_instr is not None and call_instr.defs:
                    caller.regs[call_instr.defs[0].name] = value
                    if entry_trace is not None:
                        entry_trace.writes = (
                            (caller.frame_id, call_instr.defs[0].name),
                        )
                elif entry_trace is not None:
                    entry_trace.writes = ()
                act = caller
                act.index += 1
                nxt = act.index
                code = act.code
                if nxt < len(code.instrs) and code.block_start_label[nxt]:
                    profile.record(code.func.name, code.block_start_label[nxt])
                continue
            elif kind is OpKind.NOP:
                pass
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unhandled opcode {op}")

            act.index = next_index
            if next_index < len(instrs) and code.block_start_label[next_index]:
                profile.record(code.func.name, code.block_start_label[next_index])

        return RunResult(
            value=result_value,
            instructions=executed,
            profile=profile,
            trace=trace,
            state=state,
        )


def run_program(
    program: Program,
    entry: str | None = None,
    fuel: int = 50_000_000,
    collect_trace: bool = False,
    profile: ExecutionProfile | None = None,
) -> RunResult:
    """Convenience wrapper: build an :class:`Interpreter` and run."""
    return Interpreter(program).run(
        entry=entry, fuel=fuel, collect_trace=collect_trace, profile=profile
    )
