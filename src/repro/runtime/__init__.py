"""Functional simulation: interpreter, profiler, dynamic traces.

The interpreter executes IR programs with full MIPS-like semantics
(32-bit wrapping integer arithmetic, byte/word memory, explicit-operand
calls).  It produces:

* the program's result value,
* a basic-block :class:`~repro.partition.cost.ExecutionProfile` (the
  input to the advanced scheme's cost model), and
* optionally a dynamic instruction trace consumed by the timing
  simulator — each entry carries the static instruction, its laid-out
  PC, the memory address touched, the branch outcome, and dependence
  tokens that uniquely name register instances across activations.
"""

from repro.runtime.state import Memory, MachineState
from repro.runtime.interp import Interpreter, RunResult, run_program
from repro.runtime.trace import TraceEntry, ProgramLayout, Subsystem

__all__ = [
    "Memory",
    "MachineState",
    "Interpreter",
    "RunResult",
    "run_program",
    "TraceEntry",
    "ProgramLayout",
    "Subsystem",
]
