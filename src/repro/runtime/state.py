"""Machine state for the functional interpreter.

Memory is a single sparse word-addressed store.  A word slot holds either
a 32-bit signed integer or a Python float: integer data written by
``sw``/``s.s``-of-offloaded-values stays an int, float data written by
``s.s`` of true float values stays a float.  This keeps the basic
scheme's inter-partition communication through memory exact — a value
stored from one register file and loaded into the other reads back
bit-identically — without modelling IEEE-754 encodings.

Register state lives in per-activation frames managed by the interpreter
(virtual registers are function-local names); the stack pointer is
machine-global so spill slots allocated by the register allocator behave
correctly under recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.ir.program import Program

#: Initial stack pointer (stack grows down from here).
STACK_BASE = 0x7FFFF000

Word = int | float


def s32(value: int) -> int:
    """Wrap to signed 32-bit two's complement."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


class Memory:
    """Sparse byte-addressable memory with word-granularity storage.

    Unaligned word access and byte access to float-holding words raise
    :class:`ExecutionError`.
    """

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: dict[int, Word] = {}

    def load_word(self, addr: int) -> Word:
        if addr & 3:
            raise ExecutionError(f"unaligned word load at {addr:#x}")
        return self._words.get(addr >> 2, 0)

    def store_word(self, addr: int, value: Word) -> None:
        if addr & 3:
            raise ExecutionError(f"unaligned word store at {addr:#x}")
        self._words[addr >> 2] = s32(value) if isinstance(value, int) else value

    def load_byte(self, addr: int, signed: bool = True) -> int:
        word = self._words.get(addr >> 2, 0)
        if isinstance(word, float):
            raise ExecutionError(f"byte load from float data at {addr:#x}")
        word &= 0xFFFFFFFF
        byte = (word >> ((addr & 3) * 8)) & 0xFF
        if signed and byte >= 0x80:
            byte -= 0x100
        return byte

    def store_byte(self, addr: int, value: int) -> None:
        shift = (addr & 3) * 8
        word = self._words.get(addr >> 2, 0)
        if isinstance(word, float):
            raise ExecutionError(f"byte store into float data at {addr:#x}")
        word &= 0xFFFFFFFF
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._words[addr >> 2] = s32(word)

    def words_used(self) -> int:
        return len(self._words)


@dataclass(eq=False, slots=True)
class MachineState:
    """Global (cross-activation) machine state."""

    program: Program
    memory: Memory = field(default_factory=Memory)
    sp: int = STACK_BASE

    def __post_init__(self) -> None:
        self.program.layout()
        for var in self.program.globals.values():
            if var.init:
                for i, word in enumerate(var.init):
                    self.memory.store_word(var.address + 4 * i, word)
