"""Dynamic instruction traces and static program layout.

The timing simulator is trace-driven: the interpreter emits one
:class:`TraceEntry` per dynamic instruction, carrying everything the
pipeline model needs —

* ``pc`` — the instruction's laid-out address (I-cache, branch
  predictor indexing),
* ``subsystem`` — which half of the partitioned machine executes it,
* ``reads``/``writes`` — *dependence tokens*, register instances made
  unique across activations as ``(frame_id, register name)``, so true
  dependences survive recursion and cross-call value flow,
* ``mem_addr`` — effective address for loads/stores (D-cache, memory
  disambiguation),
* ``taken`` — branch outcome (predictor training / misprediction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir.instructions import Instruction
from repro.ir.opcodes import OpKind
from repro.ir.program import Program

#: Base address of the laid-out text segment.
TEXT_BASE = 0x400000

Token = tuple[int, str]


class Subsystem(enum.Enum):
    """Which half of the partitioned microarchitecture executes an
    instruction.  Loads and stores always occupy the INT subsystem's
    load/store port regardless of where their data register lives."""

    INT = "int"
    FP = "fp"


def subsystem_of(instr: Instruction) -> Subsystem:
    """Static subsystem assignment of an instruction."""
    return Subsystem.FP if instr.info.fp_subsystem else Subsystem.INT


@dataclass(eq=False, slots=True)
class TraceEntry:
    """One dynamic instruction."""

    instr: Instruction
    pc: int
    subsystem: Subsystem
    reads: tuple[Token, ...]
    writes: tuple[Token, ...]
    mem_addr: int | None = None
    taken: bool | None = None

    @property
    def is_branch(self) -> bool:
        return self.taken is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.mem_addr is not None:
            extra = f" @{self.mem_addr:#x}"
        if self.taken is not None:
            extra = f" taken={self.taken}"
        return f"<T pc={self.pc:#x} {self.instr.op}{extra}>"


class ProgramLayout:
    """Assigns a text address to every static instruction.

    Functions are laid out sequentially in declaration order, four bytes
    per instruction, starting at :data:`TEXT_BASE`.
    """

    def __init__(self, program: Program):
        self.pc_of: dict[tuple[str, int], int] = {}
        self.text_size = 0
        addr = TEXT_BASE
        for func in program.functions.values():
            for instr in func.instructions():
                self.pc_of[(func.name, instr.uid)] = addr
                addr += 4
        self.text_size = addr - TEXT_BASE

    def pc(self, func_name: str, uid: int) -> int:
        return self.pc_of[(func_name, uid)]


def dynamic_mix(trace: list[TraceEntry]) -> dict[str, int]:
    """Summary of a trace: dynamic counts by category.

    ``fp_executed`` counts instructions executing in the FP/FPa
    subsystem — the paper's "offloaded" metric numerator for integer
    programs.
    """
    out = {
        "total": len(trace),
        "fp_executed": 0,
        "loads": 0,
        "stores": 0,
        "branches": 0,
        "copies": 0,
    }
    for entry in trace:
        kind = entry.instr.kind
        if entry.subsystem is Subsystem.FP:
            out["fp_executed"] += 1
        if kind is OpKind.LOAD:
            out["loads"] += 1
        elif kind is OpKind.STORE:
            out["stores"] += 1
        elif kind is OpKind.BRANCH:
            out["branches"] += 1
        elif kind is OpKind.COPY:
            out["copies"] += 1
    return out
