"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the pipeline stage that failed.

Each class additionally carries

* an ``exit_code`` — the distinct, documented status the CLI exits with
  when the error escapes (see ``docs/robustness.md`` for the table), and
* a pipeline ``stage`` name — used by the fault-tolerant bench harness
  to record *where* a cell failed without keeping the exception object.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    #: CLI exit status when this error escapes ``python -m repro``.
    exit_code = 1
    #: Pipeline stage this error class is attributed to.
    stage = "unknown"


class IRError(ReproError):
    """Malformed intermediate representation (verifier failures, bad
    operands, unknown opcodes, duplicate labels, ...)."""

    exit_code = 12
    stage = "verify"


class ParseError(ReproError):
    """Syntax error while parsing IR assembly or MiniC source.

    Attributes:
        line: 1-based source line of the offending token, when known.
        column: 1-based source column, when known.
    """

    exit_code = 10
    stage = "compile"

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """MiniC semantic-analysis failure (type errors, undeclared names,
    arity mismatches, ...)."""

    exit_code = 11
    stage = "compile"


class AnalysisError(ReproError):
    """A dataflow or graph analysis was asked something it cannot answer
    (e.g. dominators of an unreachable block)."""

    exit_code = 13
    stage = "analysis"


class PartitionError(ReproError):
    """A partitioning algorithm produced or was given an illegal state
    (e.g. an FPa node with an integer multiply, a violated partition
    condition)."""

    exit_code = 14
    stage = "partition"


class RegAllocError(ReproError):
    """Register allocation could not complete (e.g. more simultaneously
    live spill temporaries than reserved scratch registers)."""

    exit_code = 15
    stage = "regalloc"


class ExecutionError(ReproError):
    """Runtime failure inside the functional interpreter (unmapped memory,
    division by zero in the guest, fuel exhaustion, ...)."""

    exit_code = 16
    stage = "execute"


class FuelExhausted(ExecutionError):
    """The interpreter hit its dynamic-instruction budget.

    Used both as a safety net against non-terminating guest programs and,
    by some experiments, to cap simulated trace length deliberately.
    """

    exit_code = 17


class SimulationError(ReproError):
    """The timing simulator was misconfigured or reached an impossible
    microarchitectural state."""

    exit_code = 18
    stage = "simulate"


class WorkloadError(ReproError):
    """Unknown workload name or invalid workload scale parameters."""

    exit_code = 19
    stage = "compile"


class TracePackError(ReproError):
    """A packed trace could not be encoded or decoded (bad magic,
    checksum mismatch, unsupported format version, structural damage).

    The trace store treats this as a cache miss — the run falls back to
    re-interpretation — so it only escapes when callers use the pack
    codec directly.
    """

    exit_code = 21
    stage = "trace_pack"


class CheckpointError(ReproError):
    """A simulation checkpoint could not be encoded, decoded or applied
    (bad magic, checksum mismatch, unsupported format version, bindings
    that do not match the running simulation).

    The checkpoint store treats a damaged or stale checkpoint as a
    *cold restart* — the simulation simply runs from cycle 0 — so this
    error only escapes when callers use the codec directly or when a
    fault is injected at the ``ckpt_write``/``ckpt_read`` sites.
    """

    exit_code = 22
    stage = "checkpoint"


class PerfDegradation(ReproError):
    """``repro perf check`` confirmed a statistical performance
    degradation against the per-branch history (see
    :mod:`repro.perf.detect`).

    Raised (and mapped to exit code 23) only when the detectors agree
    the change is a real regression, not noise — the message names the
    degraded cell(s), the magnitude and the change-point sha.
    """

    exit_code = 23
    stage = "perf"


class ServeError(ReproError):
    """The ``repro serve`` daemon could not start or operate (port in
    use, invalid service configuration, a request the HTTP layer cannot
    honour).

    Request-level pipeline failures are *not* ServeErrors — they map to
    HTTP statuses via :func:`repro.serve.codes.http_status_for` and
    never escape the daemon.
    """

    exit_code = 24
    stage = "serve"


class FuzzViolationError(ReproError):
    """``repro fuzz`` found programs violating the differential oracle
    (see :mod:`repro.gen.fuzz`): a checksum divergence between schemes,
    a lint error on a generated program, a failed §6.1 profit
    certification, or an advanced partition losing to basic beyond the
    copy-overhead bound.  The message lists every violating seed."""

    exit_code = 25
    stage = "fuzz"


class FaultInjected(ReproError):
    """A fault deliberately injected by :mod:`repro.faults`.

    Attributes:
        site: The fault-point name the injection fired at, when known.
    """

    exit_code = 20

    def __init__(self, message: str, site: str | None = None):
        super().__init__(message)
        self.site = site

    @property
    def stage(self) -> str:  # type: ignore[override]
        return self.site or "inject"


#: Documented CLI exit codes (``docs/robustness.md``).  Codes 0-2 are
#: conventional (success / generic error / argparse usage); 3 is reserved
#: for OS-level input failures and 4 for the ``repro bench``
#: ``--max-failures`` gate, both assigned by the CLI itself.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_IO = 3
EXIT_BENCH_FAILURES = 4
EXIT_PERF_DEGRADED = PerfDegradation.exit_code

EXIT_CODES: dict[str, int] = {
    "ReproError": ReproError.exit_code,
    "ParseError": ParseError.exit_code,
    "SemanticError": SemanticError.exit_code,
    "IRError": IRError.exit_code,
    "AnalysisError": AnalysisError.exit_code,
    "PartitionError": PartitionError.exit_code,
    "RegAllocError": RegAllocError.exit_code,
    "ExecutionError": ExecutionError.exit_code,
    "FuelExhausted": FuelExhausted.exit_code,
    "SimulationError": SimulationError.exit_code,
    "WorkloadError": WorkloadError.exit_code,
    "FaultInjected": FaultInjected.exit_code,
    "TracePackError": TracePackError.exit_code,
    "CheckpointError": CheckpointError.exit_code,
    "PerfDegradation": PerfDegradation.exit_code,
    "ServeError": ServeError.exit_code,
    "FuzzViolationError": FuzzViolationError.exit_code,
}


def exit_code_for(exc: BaseException) -> int:
    """The documented CLI exit status for ``exc`` (1 for non-repro errors)."""
    if isinstance(exc, ReproError):
        return type(exc).exit_code
    return EXIT_ERROR


def error_stage(exc: BaseException) -> str:
    """Best-effort pipeline stage attribution for a captured exception."""
    if isinstance(exc, FaultInjected):
        return exc.stage
    if isinstance(exc, ReproError):
        return type(exc).stage
    return "unknown"
