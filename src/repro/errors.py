"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the pipeline stage that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed intermediate representation (verifier failures, bad
    operands, unknown opcodes, duplicate labels, ...)."""


class ParseError(ReproError):
    """Syntax error while parsing IR assembly or MiniC source.

    Attributes:
        line: 1-based source line of the offending token, when known.
        column: 1-based source column, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """MiniC semantic-analysis failure (type errors, undeclared names,
    arity mismatches, ...)."""


class AnalysisError(ReproError):
    """A dataflow or graph analysis was asked something it cannot answer
    (e.g. dominators of an unreachable block)."""


class PartitionError(ReproError):
    """A partitioning algorithm produced or was given an illegal state
    (e.g. an FPa node with an integer multiply, a violated partition
    condition)."""


class RegAllocError(ReproError):
    """Register allocation could not complete (e.g. more simultaneously
    live spill temporaries than reserved scratch registers)."""


class ExecutionError(ReproError):
    """Runtime failure inside the functional interpreter (unmapped memory,
    division by zero in the guest, fuel exhaustion, ...)."""


class FuelExhausted(ExecutionError):
    """The interpreter hit its dynamic-instruction budget.

    Used both as a safety net against non-terminating guest programs and,
    by some experiments, to cap simulated trace length deliberately.
    """


class SimulationError(ReproError):
    """The timing simulator was misconfigured or reached an impossible
    microarchitectural state."""


class WorkloadError(ReproError):
    """Unknown workload name or invalid workload scale parameters."""
